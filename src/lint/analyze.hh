/**
 * @file
 * smthill-analyze: two-phase, cross-translation-unit analysis over
 * the whole source tree (DESIGN.md §9; driver in
 * tools/smthill_analyze.cc).
 *
 * The per-file linter (lint/lint.hh) pattern-matches one token
 * stream at a time, so it cannot see bugs whose two halves live in
 * different files — a stat registered in src/ that no test or tool
 * ever reads, a schema field the writer emits and the parser
 * ignores, a lambda handed to the thread pool that mutates a
 * captured reference without per-index slots. This analyzer closes
 * that gap:
 *
 *  Phase 1 (buildProjectModel) walks every unit once and builds a
 *  project model: function definitions with a lightweight
 *  name-matched call graph and allocation-shaped body sites; lambda
 *  capture lists at `parallelFor` / `parallelForWorker` / `runGrid`
 *  / `runGridWorker` call sites; every stat-name registration,
 *  lookup, and literal mention; writer/parser field sites for every
 *  versioned schema in schemaCatalog(); event names emitted at
 *  EventTrace call sites vs the `kKnownEventNames` catalog consumed
 *  by smthill_trace_report; and the full suppression-marker audit
 *  from a lint-rule pass over the same bytes.
 *
 *  Phase 2 (runAnalysisPasses) runs four project-wide passes over
 *  the model:
 *   - parallel-capture:      a by-reference capture mutated inside a
 *                            pool lambda without index-/worker-
 *                            disjoint access, atomics, or locks —
 *                            the race shape TSan only catches once
 *                            the schedule cooperates
 *   - cross-tu-consistency:  stats registered but never read outside
 *                            the registering file (or looked up but
 *                            never registered by src/); schema
 *                            fields written but unparsed, parsed but
 *                            unwritten, or listed but dead; event
 *                            names emitted but unknown to
 *                            smthill_trace_report (or catalogued but
 *                            never emitted)
 *   - hot-path-allocation:   `new` / `make_unique` / container
 *                            growth / `std::function` construction
 *                            in functions reachable from
 *                            `SmtCpu::step` / `runTrialEpoch` in the
 *                            call graph (the reachability
 *                            generalization of the token-level
 *                            cpu-copy-hot-path rule)
 *   - stale-suppression:     an `// smthill-lint: allow(<rule>)`
 *                            marker that no longer suppresses any
 *                            finding of <rule> is itself a finding
 *
 * Findings share the Finding struct, the suppression mechanism
 * (`// smthill-lint: allow(<pass>)`), and the `smthill.lint.v1`
 * JSON export with smthill_lint; analysisToJson additionally stamps
 * the `tool` and `passes` metadata fields.
 */

#ifndef SMTHILL_LINT_ANALYZE_HH
#define SMTHILL_LINT_ANALYZE_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"
#include "lint/lint.hh"

namespace smthill
{
namespace lint
{

/** @return the names of the analyzer's project-wide passes. */
std::vector<std::string> passNames();

/** A (file, line) location inside the project model. */
struct Site
{
    std::string file;
    int line = 0;

    bool operator==(const Site &) const = default;
};

/** One callee reference inside a function body. */
struct CallRef
{
    std::string name; ///< bare callee identifier
    int line = 0;
};

/** One allocation-shaped site inside a function body. */
struct AllocSite
{
    std::string what; ///< "new", "make_unique", "push_back", ...
    int line = 0;
};

/** One function definition and its body-level facts. */
struct FunctionDef
{
    std::string qual; ///< "SmtCpu::step" (== bare when unqualified)
    std::string bare; ///< last path component of the name
    std::string file;
    int line = 0;
    std::vector<CallRef> calls;
    std::vector<AllocSite> allocs;
};

/** One entry of a lambda capture list. */
struct Capture
{
    std::string name;
    bool byRef = false;
};

/** One lambda literal handed to a pool fan-out call. */
struct PoolLambda
{
    std::string callee; ///< parallelFor(Worker) / runGrid(Worker)
    std::string file;
    int line = 0;
    bool byRefDefault = false;  ///< [&...]
    bool byValueDefault = false; ///< [=...]
    std::vector<Capture> captures;
    std::string indexParam;  ///< first parameter name ("" if none)
    std::string workerParam; ///< second parameter name ("" if none)
    std::size_t fileIndex = 0; ///< into ProjectModel::files
    std::size_t bodyBegin = 0; ///< body token range [begin, end)
    std::size_t bodyEnd = 0;
};

/** Uses of one stat name across the project. */
struct StatUse
{
    std::vector<Site> registrations; ///< globalStats() lookups in src/
    std::vector<Site> lookups;       ///< globalStats() lookups anywhere
    std::vector<Site> mentions;      ///< any matching string literal
};

/** Writer/parser field sites for one schema list. */
struct SchemaUse
{
    std::map<std::string, std::vector<Site>> written; ///< .set("f")
    std::map<std::string, std::vector<Site>> parsed;  ///< .at/.contains
};

/** Phase-1 output: everything the phase-2 passes consume. */
struct ProjectModel
{
    struct File
    {
        std::string path;
        std::vector<std::string> parts; ///< path components
        LexedFile lex;
    };

    std::vector<File> files;
    std::vector<FunctionDef> functions;
    std::vector<PoolLambda> poolLambdas;
    std::map<std::string, StatUse> stats;
    std::map<std::string, SchemaUse> schemas; ///< by SchemaList::name

    /// Event names emitted at instant/complete/counter call sites in
    /// src/ and bench/ (a computed name records as a "prefix*" entry).
    std::map<std::string, std::vector<Site>> emittedEvents;

    /// `kKnownEventNames` catalog entries (entry -> defining site);
    /// a trailing '*' marks a prefix wildcard.
    std::map<std::string, Site> knownEventNames;

    /// Allow markers and their uses, seeded by the phase-1 lint-rule
    /// run and extended by phase-2 pass suppressions.
    SuppressionAudit audit;
};

/** Phase 1: build the project model from in-memory units. */
ProjectModel buildProjectModel(const std::vector<SourceUnit> &units);

/**
 * Phase 2: run the four passes over @p model. Mutates
 * model.audit.used as pass findings consume allow markers, then
 * derives stale-suppression findings from what is left unused.
 * @return all unsuppressed findings in stable (file, line, rule)
 * order.
 */
std::vector<Finding> runAnalysisPasses(ProjectModel &model);

/** Both phases over in-memory units. */
std::vector<Finding> analyzeUnits(const std::vector<SourceUnit> &units);

/**
 * Both phases over files and directory trees (same walk rules as
 * lintPaths). @return findings, or nothing with @p error set.
 */
std::vector<Finding> analyzePaths(const std::vector<std::string> &paths,
                                  std::string &error);

/**
 * Serialize analyzer findings as `smthill.lint.v1` with the
 * analyzer's `tool` / `passes` metadata extensions (readable by
 * findingsFromJson, which ignores the extra fields).
 */
Json analysisToJson(const std::vector<Finding> &findings);

} // namespace lint
} // namespace smthill

#endif // SMTHILL_LINT_ANALYZE_HH
