#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/log.hh"
#include "lint/lexer.hh"

namespace smthill
{
namespace lint
{

namespace
{

/** Split a path into components, normalizing separators. */
std::vector<std::string>
pathComponents(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            if (!cur.empty() && cur != ".")
                parts.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty() && cur != ".")
        parts.push_back(cur);
    return parts;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** @return true if @p path has a `src` component (library code). */
bool
isLibraryPath(const std::vector<std::string> &parts)
{
    return std::find(parts.begin(), parts.end(), "src") != parts.end();
}

/** @return true if @p path has a `bench` component (hot loops). */
bool
isBenchPath(const std::vector<std::string> &parts)
{
    return std::find(parts.begin(), parts.end(), "bench") !=
           parts.end();
}

/** @return the module dir under `src/`, or "" if not library code. */
std::string
srcModule(const std::vector<std::string> &parts)
{
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        if (parts[i] == "src")
            return parts[i + 1];
    }
    return "";
}

/**
 * Module layering ranks: an include from module A to module B is
 * legal iff rank(B) <= rank(A). Equal ranks name sibling modules
 * that may include each other laterally — the rank-40 group
 * (policy/workload/core) is cyclic by design: core's learners
 * implement the policy interface, policy's bandit/RL learners reuse
 * core's partition lattice, and workload's open system drives any
 * policy. The rule only rejects strictly upward edges.
 */
int
moduleRank(const std::string &module)
{
    static const std::map<std::string, int> ranks = {
        {"common", 0},  {"trace", 10},    {"branch", 10},
        {"memory", 10}, {"pipeline", 20}, {"policy", 40},
        {"workload", 40}, {"core", 40},   {"phase", 50},
        {"harness", 60}, {"validate", 70}, {"lint", 80},
    };
    auto it = ranks.find(module);
    return it == ranks.end() ? -1 : it->second;
}

/** Files exempt from the determinism rules (the RNG itself). */
bool
isRngSource(const std::string &path)
{
    return endsWith(path, "common/rng.hh") ||
           endsWith(path, "common/rng.cc");
}

/** Parse `#include` target from a directive; sets @p angled. */
bool
parseInclude(const std::string &directive, std::string &target,
             bool &angled)
{
    std::size_t i = 0;
    auto skipSpace = [&] {
        while (i < directive.size() &&
               std::isspace(static_cast<unsigned char>(directive[i])))
            ++i;
    };
    skipSpace();
    if (i >= directive.size() || directive[i] != '#')
        return false;
    ++i;
    skipSpace();
    if (directive.compare(i, 7, "include") != 0)
        return false;
    i += 7;
    skipSpace();
    if (i >= directive.size())
        return false;
    char open = directive[i];
    char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
    if (close == '\0')
        return false;
    std::size_t end = directive.find(close, i + 1);
    if (end == std::string::npos)
        return false;
    target = directive.substr(i + 1, end - i - 1);
    angled = open == '<';
    return true;
}

/** Directive keyword (`ifndef`, `define`, `pragma`, ...) + operand. */
void
parseDirective(const std::string &directive, std::string &keyword,
               std::string &operand)
{
    keyword.clear();
    operand.clear();
    std::istringstream is(directive);
    char hash = '\0';
    is >> hash >> keyword >> operand;
    // `#ifndef X` and `# ifndef X` both lex with the hash first.
    if (keyword == "#" || keyword.empty())
        is >> keyword >> operand;
    else if (!keyword.empty() && keyword[0] == '#')
        keyword.erase(keyword.begin());
}

/** Canonical include-guard macro for a header path. */
std::string
canonicalGuard(const std::string &path)
{
    std::vector<std::string> parts = pathComponents(path);
    static const std::set<std::string> keepRoots = {
        "bench", "tools", "tests", "examples"};
    std::size_t begin = parts.empty() ? 0 : parts.size() - 1;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (parts[i] == "src" && i + 1 < parts.size()) {
            begin = i + 1;
            break;
        }
        if (keepRoots.count(parts[i])) {
            begin = i;
            break;
        }
    }
    std::string guard = "SMTHILL";
    for (std::size_t i = begin; i < parts.size(); ++i) {
        guard.push_back('_');
        for (char c : parts[i]) {
            guard.push_back(
                std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : '_');
        }
    }
    return guard;
}

/** @return true if @p name is a valid `smthill.*` stat name. */
bool
validStatName(const std::string &name)
{
    if (name.rfind("smthill.", 0) != 0)
        return false;
    bool prevDot = false;
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (c == '.') {
            if (prevDot || i == 0 || i + 1 == name.size())
                return false;
            prevDot = true;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '_') {
            prevDot = false;
        } else {
            return false;
        }
    }
    return name.find('.') != std::string::npos;
}

/** Every schema list governing @p path (usually zero or one). */
std::vector<const SchemaList *>
schemaListsFor(const std::string &path)
{
    std::vector<const SchemaList *> out;
    for (const SchemaList &s : schemaCatalog()) {
        for (const std::string &suffix : s.fileSuffixes) {
            if (endsWith(path, suffix)) {
                out.push_back(&s);
                break;
            }
        }
    }
    return out;
}

/** One stat registration site found during scanning. */
struct StatSite
{
    std::string file;
    int line = 0;
    int allowLine = 0; ///< stat-name allow covering this line, or 0
};

/** Cross-file state threaded through per-file scans. */
struct ScanState
{
    /// `globalStats()` registrations in `src/`, keyed by stat name.
    std::map<std::string, std::vector<StatSite>> statSites;
};

class FileScanner
{
  public:
    FileScanner(const std::string &file_path, const std::string &content,
                ScanState &scan_state, SuppressionAudit *audit_sink = nullptr)
        : path(file_path), parts(pathComponents(file_path)),
          lex(lexFile(content)), state(scan_state), audit(audit_sink)
    {
        if (audit && !lex.allows.empty())
            audit->allows[path] = lex.allows;
    }

    std::vector<Finding>
    run()
    {
        scanTokens();
        scanDirectives();
        if (endsWith(path, ".hh") || endsWith(path, ".h"))
            checkIncludeGuard();
        return findings;
    }

  private:
    void
    report(const std::string &rule, int line, const std::string &message)
    {
        int allowLine = lex.allowLineFor(rule, line);
        if (allowLine != 0) {
            if (audit)
                audit->recordUse(path, allowLine, rule);
            return;
        }
        findings.push_back({rule, path, line, message});
    }

    bool
    isIdent(std::size_t i, const char *text) const
    {
        return i < lex.tokens.size() &&
               lex.tokens[i].kind == TokKind::Identifier &&
               lex.tokens[i].text == text;
    }

    bool
    isPunct(std::size_t i, char c) const
    {
        return i < lex.tokens.size() &&
               lex.tokens[i].kind == TokKind::Punct &&
               lex.tokens[i].text.size() == 1 && lex.tokens[i].text[0] == c;
    }

    bool
    isCall(std::size_t i) const
    {
        return isPunct(i + 1, '(');
    }

    void scanTokens();
    void scanDirectives();
    void checkIncludeGuard();
    void checkDeterminismIdent(std::size_t i);
    void checkErrorHandlingIdent(std::size_t i);
    void checkCpuCopyIdent(std::size_t i);
    void checkStatRegistration(std::size_t i);
    void checkSchemaField(std::size_t i);

    const std::string path;
    const std::vector<std::string> parts;
    const LexedFile lex;
    ScanState &state;
    SuppressionAudit *audit;
    std::vector<Finding> findings;
};

void
FileScanner::checkDeterminismIdent(std::size_t i)
{
    if (isRngSource(path))
        return;
    const Token &t = lex.tokens[i];

    // Wall-clock sources: chrono clock types are banned outright;
    // libc entry points only when called (so a member named `time`
    // does not trip the rule).
    static const std::set<std::string> clockTypes = {
        "steady_clock", "system_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "timespec_get",
    };
    static const std::set<std::string> clockCalls = {"time", "clock"};
    if (clockTypes.count(t.text) ||
        (clockCalls.count(t.text) && isCall(i))) {
        // Sanctioned carve-out (the exit-in-log.cc shape): the host
        // profiler is the one component allowed to read a monotonic
        // clock. Its data never flows into sim state — the contract
        // is pinned by the profiler-off bit-identity tests.
        if (endsWith(path, "common/profile.cc"))
            return;
        report("no-wall-clock", t.line,
               "wall-clock source '" + t.text +
                   "' breaks replay determinism; derive timing from "
                   "simulated cycles");
        return;
    }

    // Non-deterministic or out-of-band randomness: every stochastic
    // draw must flow through common/rng.hh so checkpoint clones
    // replay bit-identically.
    static const std::set<std::string> randomTypes = {
        "random_device",     "mt19937",
        "mt19937_64",        "minstd_rand",
        "minstd_rand0",      "default_random_engine",
        "knuth_b",           "ranlux24",
        "ranlux48",          "uniform_int_distribution",
        "uniform_real_distribution", "normal_distribution",
        "bernoulli_distribution",    "poisson_distribution",
        "discrete_distribution",     "random_shuffle",
        "shuffle",
    };
    static const std::set<std::string> randomCalls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
        "random",
    };
    if (randomTypes.count(t.text) ||
        (randomCalls.count(t.text) && isCall(i))) {
        report("no-libc-random", t.line,
               "'" + t.text +
                   "' bypasses common/rng.hh; draw from a seeded Rng "
                   "so replay and checkpoint clones stay identical");
        return;
    }

    static const std::set<std::string> unordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    if (unordered.count(t.text)) {
        report("no-unordered-container", t.line,
               "'" + t.text +
                   "' iteration order varies across libraries and "
                   "runs; use std::map/std::set or a sorted vector");
    }
}

void
FileScanner::checkErrorHandlingIdent(std::size_t i)
{
    const Token &t = lex.tokens[i];
    bool prevIsEq = i > 0 && isPunct(i - 1, '=');
    bool prevIsOperator = i > 0 && isIdent(i - 1, "operator");

    if (t.text == "new" && !prevIsOperator) {
        report("error-handling", t.line,
               "naked 'new'; own allocations via std::make_unique, "
               "containers, or value members");
        return;
    }
    if (t.text == "delete" && !prevIsEq && !prevIsOperator) {
        report("error-handling", t.line,
               "naked 'delete'; lifetimes belong to owners "
               "(unique_ptr, containers), not manual frees");
        return;
    }

    static const std::set<std::string> exits = {
        "exit", "_exit", "_Exit", "quick_exit", "abort", "terminate",
    };
    if (exits.count(t.text) && isCall(i) &&
        !endsWith(path, "common/log.cc")) {
        report("error-handling", t.line,
               "'" + t.text +
                   "' outside common/log.cc; report user errors via "
                   "fatal() and bugs via panic()");
        return;
    }

    if (t.text == "throw" && isLibraryPath(parts)) {
        report("error-handling", t.line,
               "'throw' in library code; use fatal()/panic() from "
               "common/log.hh so failures are uniform and loggable");
    }
}

void
FileScanner::checkCpuCopyIdent(std::size_t i)
{
    // A whole-machine SmtCpu copy costs tens of microseconds of
    // allocation; the trial sweeps were rewritten to restore warm
    // per-worker machines instead (core/machine_arena.hh). The rule
    // guards library and bench code — the paths that run per trial
    // or per iteration — so the copy cannot silently creep back in.
    // Tests exercise checkpoint value semantics on purpose and are
    // exempt, as is the checkpoint API itself.
    if (!isLibraryPath(parts) && !isBenchPath(parts))
        return;
    if (endsWith(path, "core/machine_arena.cc") ||
        endsWith(path, "core/machine_arena.hh"))
        return;
    if (!isIdent(i, "SmtCpu"))
        return;
    if (i + 1 >= lex.tokens.size() ||
        lex.tokens[i + 1].kind != TokKind::Identifier)
        return; // reference/pointer bindings and casts are fine

    // Copy-init from an lvalue: `SmtCpu x = y;`. An initializer that
    // keeps going (`machineFor(...)`, `y.clone()`) is a function
    // result — materialized in place, no copy.
    bool copyInit = isPunct(i + 2, '=') && i + 3 < lex.tokens.size() &&
                    lex.tokens[i + 3].kind == TokKind::Identifier &&
                    isPunct(i + 4, ';');
    // Direct-init copy: `SmtCpu x(y);`. Multi-token argument lists
    // are real constructor calls and do not match.
    bool directInit = isPunct(i + 2, '(') &&
                      i + 3 < lex.tokens.size() &&
                      lex.tokens[i + 3].kind == TokKind::Identifier &&
                      isPunct(i + 4, ')') && isPunct(i + 5, ';');
    if (copyInit || directInit) {
        report("cpu-copy-hot-path", lex.tokens[i].line,
               "whole-machine SmtCpu copy; hot paths restore a warm "
               "machine (MachineArena::acquire + SmtCpu::restoreFrom, "
               "core/machine_arena.hh) instead of copy-constructing "
               "per trial");
    }
}

void
FileScanner::checkStatRegistration(std::size_t i)
{
    // globalStats().counter("name") / .gauge / .distribution
    if (!isIdent(i, "globalStats") || !isPunct(i + 1, '(') ||
        !isPunct(i + 2, ')') || !isPunct(i + 3, '.'))
        return;
    if (!isIdent(i + 4, "counter") && !isIdent(i + 4, "gauge") &&
        !isIdent(i + 4, "distribution"))
        return;
    if (!isPunct(i + 5, '('))
        return;
    const Token &arg = lex.tokens.size() > i + 6 ? lex.tokens[i + 6]
                                                 : lex.tokens[i + 5];
    if (arg.kind != TokKind::String)
        return; // computed name; not statically checkable

    if (!validStatName(arg.text)) {
        report("stat-name", arg.line,
               "stat name \"" + arg.text +
                   "\" violates the smthill.* dotted-lowercase "
                   "convention (e.g. smthill.thread_pool.tasks)");
    }
    if (srcModule(parts) != "") {
        state.statSites[arg.text].push_back(
            {path, arg.line, lex.allowLineFor("stat-name", arg.line)});
    }
}

void
FileScanner::checkSchemaField(std::size_t i)
{
    const std::vector<const SchemaList *> lists = schemaListsFor(path);
    if (lists.empty())
        return;
    // .set("field" / .at("field" / .contains("field"
    if (!isPunct(i, '.'))
        return;
    if (!isIdent(i + 1, "set") && !isIdent(i + 1, "at") &&
        !isIdent(i + 1, "contains"))
        return;
    if (!isPunct(i + 2, '('))
        return;
    if (i + 3 >= lex.tokens.size() ||
        lex.tokens[i + 3].kind != TokKind::String)
        return;
    const Token &arg = lex.tokens[i + 3];
    for (const SchemaList *s : lists) {
        if (s->fields.count(arg.text))
            return;
    }
    report("schema-field", arg.line,
           "field \"" + arg.text +
               "\" is not in the versioned schema list for this "
               "writer; bump the schema version and extend the "
               "list in lint/lint.cc");
}

void
FileScanner::scanTokens()
{
    for (std::size_t i = 0; i < lex.tokens.size(); ++i) {
        if (lex.tokens[i].kind != TokKind::Identifier)
            continue;
        checkDeterminismIdent(i);
        checkErrorHandlingIdent(i);
        checkCpuCopyIdent(i);
        checkStatRegistration(i);
    }
    for (std::size_t i = 0; i < lex.tokens.size(); ++i)
        checkSchemaField(i);
}

void
FileScanner::scanDirectives()
{
    const std::string module = srcModule(parts);
    const int myRank = moduleRank(module);

    for (const Token &t : lex.tokens) {
        if (t.kind != TokKind::Directive)
            continue;
        std::string target;
        bool angled = false;
        if (!parseInclude(t.text, target, angled))
            continue;

        if (angled && !isRngSource(path)) {
            if (target == "random") {
                report("no-libc-random", t.line,
                       "<random> include; every stochastic draw goes "
                       "through common/rng.hh");
            } else if (target == "unordered_map" ||
                       target == "unordered_set") {
                report("no-unordered-container", t.line,
                       "<" + target +
                           "> include; iteration order varies, use "
                           "ordered containers");
            } else if ((target == "ctime" || target == "time.h" ||
                        target == "sys/time.h") &&
                       !endsWith(path, "common/profile.cc")) {
                report("no-wall-clock", t.line,
                       "<" + target +
                           "> include; derive timing from simulated "
                           "cycles, not wall clock");
            }
        }

        // Layering applies to quoted project includes from src/.
        if (!angled && myRank >= 0) {
            std::vector<std::string> tparts = pathComponents(target);
            if (tparts.size() < 2)
                continue;
            int depRank = moduleRank(tparts[0]);
            if (depRank > myRank) {
                report("layering", t.line,
                       "src/" + module + " must not include " +
                           tparts[0] + "/ (upward layering edge; see "
                           "module ranks in lint/lint.cc)");
            }
        }
    }
}

void
FileScanner::checkIncludeGuard()
{
    const std::string want = canonicalGuard(path);
    const Token *first = nullptr;
    const Token *second = nullptr;
    for (const Token &t : lex.tokens) {
        if (t.kind != TokKind::Directive)
            continue;
        if (!first) {
            first = &t;
        } else {
            second = &t;
            break;
        }
    }
    if (!first) {
        report("include-guard", 1,
               "header has no include guard; expected #ifndef " + want);
        return;
    }
    std::string keyword, operand;
    parseDirective(first->text, keyword, operand);
    if (keyword == "pragma" && operand == "once") {
        report("include-guard", first->line,
               "#pragma once; house style is the canonical #ifndef " +
                   want + " guard");
        return;
    }
    if (keyword != "ifndef" || operand != want) {
        report("include-guard", first->line,
               "first directive must be #ifndef " + want + " (found #" +
                   keyword + " " + operand + ")");
        return;
    }
    if (second) {
        parseDirective(second->text, keyword, operand);
        if (keyword != "define" || operand != want) {
            report("include-guard", second->line,
                   "#ifndef " + want + " must be followed by #define " +
                       want);
        }
    } else {
        report("include-guard", first->line,
               "#ifndef " + want + " is missing its #define");
    }
}

/** Stable finding order: file, line, rule, message. */
void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
}

/** Emit duplicate-registration findings from aggregated stat sites. */
void
appendStatDuplicates(const ScanState &state,
                     std::vector<Finding> &findings,
                     SuppressionAudit *audit = nullptr)
{
    for (const auto &[name, sites] : state.statSites) {
        if (sites.size() < 2)
            continue;
        for (std::size_t i = 1; i < sites.size(); ++i) {
            if (sites[i].allowLine != 0) {
                if (audit)
                    audit->recordUse(sites[i].file, sites[i].allowLine,
                                     "stat-name");
                continue;
            }
            findings.push_back(
                {"stat-name", sites[i].file, sites[i].line,
                 "stat \"" + name + "\" already registered at " +
                     sites[0].file + ":" +
                     std::to_string(sites[0].line) +
                     "; stat names are unique across src/"});
        }
    }
}

/** Lintable source extensions. */
bool
lintableFile(const std::string &name)
{
    return endsWith(name, ".hh") || endsWith(name, ".h") ||
           endsWith(name, ".cc") || endsWith(name, ".cpp");
}

/** Directories never walked: build output, VCS, fixture trees. */
bool
skipDirectory(const std::string &name)
{
    return name.empty() || name[0] == '.' ||
           name.rfind("build", 0) == 0 || name == "fixtures" ||
           name == "header_tus" || name == "CMakeFiles";
}

} // namespace

std::vector<std::string>
ruleNames()
{
    return {
        "no-wall-clock",  "no-libc-random", "no-unordered-container",
        "stat-name",      "schema-field",   "error-handling",
        "cpu-copy-hot-path", "include-guard", "layering",
    };
}

const std::vector<SchemaList> &
schemaCatalog()
{
    static const std::vector<SchemaList> catalog = {
        // smthill.epoch-trace.v1 (core/epoch_trace.hh)
        {"smthill.epoch-trace.v1",
         {"core/epoch_trace.cc"},
         {
             "schema",        "metric",         "num_threads",
             "epochs",        "epoch",          "cycle",
             "elapsed_cycles", "ipc",           "metric_value",
             "trial",         "anchor",         "round_perf",
             "single_ipc_est", "gradient_thread", "sampling_thread",
             "anchor_moved",  "software_cost",
         }},
        // smthill.report.v1 (harness/report.hh)
        {"smthill.report.v1",
         {"harness/report.cc"},
         {
             "schema",       "cycles",          "total_ipc",
             "threads",      "label",           "ipc",
             "committed",    "flushed",         "fetch_share",
             "mispredict_rate", "dl1_mpki",     "l2_mpki",
             "stalled_cycles",  "locked_frac",
             "flushed_per_commit",
         }},
        // smthill.events.v1 (common/event_trace.hh); the trace
        // report tool parses the same dialect.
        {"smthill.events.v1",
         {"common/event_trace.cc", "tools/smthill_trace_report.cc"},
         {
             "traceEvents", "displayTimeUnit", "otherData",
             "schema",      "clock",           "dropped",
             "name",        "cat",             "ph",
             "ts",          "dur",             "pid",
             "tid",         "args",            "value",
         }},
        // smthill.events.v1 job-lifecycle args
        // (workload/open_system.cc)
        {"smthill.events.v1/job-args",
         {"workload/open_system.cc"},
         {
             "job",       "benchmark", "priority", "instructions",
             "context",   "waited",    "committed", "residency",
         }},
        // smthill.bench.open-system.v1 (bench/bench_open_system.cc)
        {"smthill.bench.open-system.v1",
         {"bench/bench_open_system.cc"},
         {
             "schema",          "seed",           "machine_threads",
             "num_jobs",        "rows",           "mean_gap",
             "policy",          "throughput",     "latency_p50",
             "latency_p95",     "latency_p99",    "fairness",
             "completed_jobs",  "horizon_jobs",   "max_queue_depth",
             "cycles",          "committed_total",
         }},
        // smthill.bench.learner-race.v1 (bench/bench_fig09_hill_main.cc)
        {"smthill.bench.learner-race.v1",
         {"bench/bench_fig09_hill_main.cc"},
         {
             "schema",     "epochs",   "epoch_size", "seed",
             "cells",      "workload", "group",      "threads",
             "icount",     "flush",    "dcra",       "hill",
             "phase_hill", "bandit",   "rl",         "counters",
         }},
        // smthill.profile.v1 (common/profile.hh): host-side profiler
        // report. Writer and parser both live in common/profile.cc
        // (round-trip by construction).
        {"smthill.profile.v1",
         {"common/profile.cc"},
         {
             "schema",   "spans",   "threads",
             "name",     "count",   "total_ns",
             "self_ns",  "max_ns",  "thread",
             "parallel_efficiency",
         }},
        // smthill.snapshots.v1 (common/stat_snapshot.hh): periodic
        // StatRegistry delta rows (JSONL stream).
        {"smthill.snapshots.v1",
         {"common/stat_snapshot.cc"},
         {
             "schema",   "seq",     "epoch",  "cycle",
             "counters", "gauges",  "dists",  "count",
             "mean",     "min",     "p50",    "p95",
             "max",
         }},
        // smthill.lint.v1 (lint/lint.hh): findings documents from
        // both smthill_lint and smthill_analyze, including the
        // analyzer's tool/passes metadata extensions. Registered
        // here so the schema-field rule covers the linter's own
        // writers instead of exempting them.
        {"smthill.lint.v1",
         {"lint/lint.cc", "lint/analyze.cc", "tools/smthill_analyze.cc"},
         {
             "schema",  "findings", "rule",   "file",
             "line",    "message",  "tool",   "passes",
         }},
    };
    return catalog;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &content)
{
    ScanState state;
    std::vector<Finding> findings =
        FileScanner(path, content, state).run();
    appendStatDuplicates(state, findings);
    sortFindings(findings);
    return findings;
}

bool
collectSourceFiles(const std::vector<std::string> &paths,
                   std::vector<std::string> &files, std::string &error)
{
    namespace fs = std::filesystem;
    error.clear();
    files.clear();

    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            auto it = fs::recursive_directory_iterator(
                p, fs::directory_options::skip_permission_denied, ec);
            if (ec) {
                error = p + ": " + ec.message();
                return false;
            }
            for (auto end = fs::end(it); it != end;
                 it.increment(ec)) {
                if (ec) {
                    error = p + ": " + ec.message();
                    return false;
                }
                const fs::directory_entry &entry = *it;
                std::string name = entry.path().filename().string();
                if (entry.is_directory()) {
                    if (skipDirectory(name))
                        it.disable_recursion_pending();
                    continue;
                }
                if (entry.is_regular_file() && lintableFile(name))
                    files.push_back(entry.path().generic_string());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            error = p + ": not a file or directory";
            return false;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return true;
}

std::vector<Finding>
lintUnits(const std::vector<SourceUnit> &units, SuppressionAudit *audit)
{
    ScanState state;
    std::vector<Finding> findings;
    for (const auto &[path, content] : units) {
        std::vector<Finding> here =
            FileScanner(path, content, state, audit).run();
        findings.insert(findings.end(), here.begin(), here.end());
    }
    appendStatDuplicates(state, findings, audit);
    sortFindings(findings);
    return findings;
}

std::vector<Finding>
lintPaths(const std::vector<std::string> &paths, std::string &error)
{
    std::vector<std::string> files;
    if (!collectSourceFiles(paths, files, error))
        return {};

    std::vector<SourceUnit> units;
    units.reserve(files.size());
    for (const std::string &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            error = file + ": cannot read";
            return {};
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        units.emplace_back(file, buf.str());
    }
    return lintUnits(units);
}

Json
findingsToJson(const std::vector<Finding> &findings)
{
    Json root = Json::object();
    root.set("schema", Json("smthill.lint.v1"));
    Json arr = Json::array();
    for (const Finding &f : findings) {
        Json item = Json::object();
        item.set("rule", Json(f.rule));
        item.set("file", Json(f.file));
        item.set("line", Json(f.line));
        item.set("message", Json(f.message));
        arr.push(std::move(item));
    }
    root.set("findings", std::move(arr));
    return root;
}

bool
findingsFromJson(const Json &doc, std::vector<Finding> &out,
                 std::string &error)
{
    out.clear();
    error.clear();
    if (!doc.isObject() || !doc.contains("schema") ||
        !doc.at("schema").isString() ||
        doc.at("schema").asString() != "smthill.lint.v1") {
        error = "not a smthill.lint.v1 document";
        return false;
    }
    if (!doc.contains("findings") || !doc.at("findings").isArray()) {
        error = "missing findings array";
        return false;
    }
    for (const Json &item : doc.at("findings").items()) {
        if (!item.isObject() || !item.contains("rule") ||
            !item.contains("file") || !item.contains("line") ||
            !item.contains("message") || !item.at("rule").isString() ||
            !item.at("file").isString() || !item.at("line").isNumber() ||
            !item.at("message").isString()) {
            error = "malformed finding entry";
            out.clear();
            return false;
        }
        out.push_back({item.at("rule").asString(),
                       item.at("file").asString(),
                       static_cast<int>(item.at("line").asInt()),
                       item.at("message").asString()});
    }
    return true;
}

} // namespace lint
} // namespace smthill
