/**
 * @file
 * smthill-lint: project-specific static analysis over the source
 * tree (see DESIGN.md §9 for the rule catalog and rationale).
 *
 * The simulator's headline results rest on properties no runtime
 * check can prove — bit-identical replay at any `--jobs` count,
 * checkpoint-clone determinism, stable stat/trace schemas — and
 * those properties die silently when someone introduces `rand()`,
 * wall-clock time, unordered-container iteration, or an off-schema
 * stat name into a hot path. The rules here catch exactly those
 * regressions at build time, before the differential fuzzer ever has
 * to shrink a seed.
 *
 * Rules (each suppressible per line via
 * `// smthill-lint: allow(<rule>)` on the finding line or the line
 * above):
 *  - no-wall-clock:          no `time()`/`clock()`/chrono clocks
 *                            outside `src/common/rng.*`
 *  - no-libc-random:         no `rand`/`srand`/`<random>` machinery
 *                            outside `src/common/rng.*`
 *  - no-unordered-container: no `std::unordered_{map,set}` anywhere
 *                            (iteration order feeds exported results)
 *  - stat-name:              literals registered via `globalStats()`
 *                            match `smthill.*` dotted-lowercase and
 *                            are registered once across `src/`
 *  - schema-field:           JSON field literals in the epoch-trace
 *                            and report writers stay inside the
 *                            versioned schema lists
 *  - error-handling:         no naked `new`/`delete`; no
 *                            `exit`/`abort` outside `common/log.cc`;
 *                            no `throw` in library code (`src/`)
 *  - cpu-copy-hot-path:      no `SmtCpu x = y;` copy-construction in
 *                            `src/` or `bench/` outside the
 *                            checkpoint API (`core/machine_arena.*`);
 *                            hot paths restore warm machines via
 *                            `MachineArena::acquire` instead of
 *                            paying the whole-machine copy per trial
 *  - include-guard:          every header opens with the canonical
 *                            `SMTHILL_<PATH>_HH` `#ifndef` guard
 *  - layering:               `src/` modules include only same-or-
 *                            lower-ranked modules (common -> trace/
 *                            branch/memory -> pipeline -> policy/
 *                            workload -> core -> phase -> harness ->
 *                            validate)
 */

#ifndef SMTHILL_LINT_LINT_HH
#define SMTHILL_LINT_LINT_HH

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

namespace smthill
{
namespace lint
{

/** One unsuppressed rule violation. */
struct Finding
{
    std::string rule;    ///< rule name from ruleNames()
    std::string file;    ///< path as passed to the linter
    int line = 0;        ///< 1-based source line
    std::string message; ///< human-readable description

    bool operator==(const Finding &) const = default;
};

/** @return the names of every implemented rule. */
std::vector<std::string> ruleNames();

/**
 * One versioned JSON schema: the field list plus the writer/parser
 * files whose `.set("f")` / `.at("f")` / `.contains("f")` literals
 * it governs. The schema-field rule checks every literal in a
 * governed file against the union of the lists that govern it; the
 * analyzer's cross-tu-consistency pass additionally compares the
 * written, parsed, and listed field sets per schema.
 */
struct SchemaList
{
    std::string name;                      ///< e.g. "smthill.report.v1"
    std::vector<std::string> fileSuffixes; ///< writer/parser files
    std::set<std::string> fields;          ///< versioned field list
};

/** The versioned schema catalog, in stable order. */
const std::vector<SchemaList> &schemaCatalog();

/**
 * Suppression bookkeeping threaded through a lint run so the
 * analyzer's stale-suppression pass can prove which
 * `// smthill-lint: allow(<rule>)` markers still earn their keep.
 * `allows` records every marker seen; `used` records, per file, the
 * (marker line, rule) pairs that actually suppressed a finding.
 */
struct SuppressionAudit
{
    std::map<std::string, std::map<int, std::set<std::string>>> allows;
    std::map<std::string, std::set<std::pair<int, std::string>>> used;

    void
    recordUse(const std::string &file, int allow_line,
              const std::string &rule)
    {
        used[file].insert({allow_line, rule});
    }
};

/** One in-memory source file: (path, content). */
using SourceUnit = std::pair<std::string, std::string>;

/**
 * Lint one file given its @p path and @p content. Path-scoped rules
 * (allowlists, module ranks, schema files) key off @p path, so tests
 * may lint fixture content under a synthetic path. Duplicate
 * stat-name detection is limited to registrations within this file;
 * lintPaths() extends it across files.
 */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &content);

/**
 * Lint files and directory trees. Directories are walked
 * recursively for `.hh`/`.h`/`.cc`/`.cpp` files in deterministic
 * (sorted) order, skipping build outputs, dot-directories, and
 * `fixtures` directories (which hold intentionally-failing lint
 * fixtures). Cross-file checks (duplicate stat registration under
 * `src/`) run over the whole set.
 *
 * @param paths files and/or directories to lint
 * @param error receives a message if a path cannot be read
 * @return all unsuppressed findings, or nothing with @p error set
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &paths,
                               std::string &error);

/**
 * Lint a set of in-memory units (the analyzer's phase-1 entry: it
 * reads the tree once, lints for suppression accounting, then builds
 * the project model from the same bytes). Cross-file checks run over
 * the whole set. When @p audit is non-null it receives every allow
 * marker and every (marker, rule) use, including markers consumed by
 * suppressed cross-file stat-name findings.
 */
std::vector<Finding> lintUnits(const std::vector<SourceUnit> &units,
                               SuppressionAudit *audit = nullptr);

/**
 * Collect every `.hh`/`.h`/`.cc`/`.cpp` file under @p paths in
 * deterministic (sorted, deduplicated) order, applying the same
 * skip rules as lintPaths (build outputs, dot-directories, fixture
 * trees). @return false with @p error set on unreadable paths.
 */
bool collectSourceFiles(const std::vector<std::string> &paths,
                        std::vector<std::string> &files,
                        std::string &error);

/** Serialize findings as a `smthill.lint.v1` JSON document. */
Json findingsToJson(const std::vector<Finding> &findings);

/**
 * Parse a `smthill.lint.v1` document back into findings.
 * @return false with @p error set on schema violations
 */
bool findingsFromJson(const Json &doc, std::vector<Finding> &out,
                      std::string &error);

} // namespace lint
} // namespace smthill

#endif // SMTHILL_LINT_LINT_HH
