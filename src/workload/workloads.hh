/**
 * @file
 * The multiprogrammed workloads of Table 3: 21 two-thread and 21
 * four-thread combinations of the Table 2 benchmarks, in three groups
 * each — ILP (high-ILP programs only), MEM (memory-intensive only),
 * and MIX (both kinds).
 *
 * A few of the 4-thread ILP/MIX compositions are partially illegible
 * in the available paper text; those rows are reconstructed from the
 * legible fragments plus the published "Rsc" sums, and are marked
 * `reconstructed` below. All MEM4 rows and all 2-thread rows are
 * verbatim from the paper.
 */

#ifndef SMTHILL_WORKLOAD_WORKLOADS_HH
#define SMTHILL_WORKLOAD_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/program_profile.hh"
#include "trace/stream_generator.hh"

namespace smthill
{

/** One multiprogrammed workload. */
struct Workload
{
    std::string name;                    ///< e.g. "art-mcf"
    std::vector<std::string> benchmarks; ///< Table 2 benchmark names
    std::string group;                   ///< ILP2/MIX2/MEM2/ILP4/...
    bool reconstructed = false;          ///< see file comment

    int numThreads() const
    {
        return static_cast<int>(benchmarks.size());
    }

    /** Sum of the paper's Table 2 "Rsc" values (Table 3 column). */
    int paperRscSum() const;

    /** Build one stream generator per thread. */
    std::vector<StreamGenerator> makeGenerators(
        std::uint64_t seed_salt = 0) const;
};

/** @return all 42 workloads, 2-thread groups first. */
const std::vector<Workload> &allWorkloads();

/** @return the 21 two-thread workloads. */
std::vector<Workload> twoThreadWorkloads();

/** @return the 21 four-thread workloads. */
std::vector<Workload> fourThreadWorkloads();

/** @return workloads in one group ("ILP2", "MIX4", ...). */
std::vector<Workload> workloadsInGroup(const std::string &group);

/** @return the workload named @p name (fatal if unknown). */
const Workload &workloadByName(const std::string &name);

/** @return the six group names in presentation order. */
const std::vector<std::string> &workloadGroups();

/**
 * Build a custom multiprogrammed workload from Table 2 benchmark
 * names (for experiments beyond the paper's 42 combinations). The
 * group label is derived from the members' categories.
 */
Workload makeCustomWorkload(const std::vector<std::string> &benchmarks);

/**
 * Draw a random workload of @p threads members (with repetition
 * allowed across different workloads but not within one) — used by
 * the stress/property tests.
 */
Workload randomWorkload(int threads, std::uint64_t seed);

} // namespace smthill

#endif // SMTHILL_WORKLOAD_WORKLOADS_HH
