/**
 * @file
 * Open-system traffic scenario: jobs arrive on a seeded stochastic
 * process, attach to free hardware contexts, run a bounded
 * instruction stream, and depart — driving time-varying thread
 * counts through the pipeline and whichever resource policy is
 * attached. This is the serving-system regime the paper's closed
 * 2-4-thread mixes cannot exercise: learner reaction to thread
 * churn (SingleIPC re-bootstrap, partition re-feasibility, phase
 * model invalidation).
 *
 * Everything is deterministic: the whole arrival schedule (epoch
 * gaps via inverse-transform exponential draws, benchmark choices,
 * per-job instruction bounds, priorities, stream seeds) is
 * pre-generated from one Rng at construction, so the same
 * OpenSystemConfig always produces the same run, cycle for cycle —
 * which is what lets the differential fuzzer cross-check runs and
 * the bench demand bit-identical reruns.
 */

#ifndef SMTHILL_WORKLOAD_OPEN_SYSTEM_HH
#define SMTHILL_WORKLOAD_OPEN_SYSTEM_HH

#include <functional>
#include <string>
#include <vector>

#include "pipeline/cpu.hh"
#include "policy/policy.hh"

namespace smthill
{

/** Parameters of one open-system run. */
struct OpenSystemConfig
{
    std::uint64_t seed = 1;       ///< drives the whole schedule

    /**
     * Arrival rate lambda in jobs per cycle; inter-arrival gaps are
     * exponential with mean 1/lambda (clamped to >= 1 cycle).
     */
    double arrivalRate = 1.0 / 65536.0;

    int numJobs = 16;             ///< jobs in the schedule
    std::uint64_t minJobInstructions = 20'000;
    std::uint64_t maxJobInstructions = 80'000;
    Cycle epochSize = 64 * 1024;  ///< policy epoch() cadence

    /**
     * Hard cycle cap; 0 = run until every scheduled job departs.
     * Jobs still resident (or still queued) when the horizon hits
     * are closed out with completed = false.
     */
    Cycle horizon = 0;

    /**
     * Draw per-job priority/SLA weights in [1, 4] instead of all 1.
     * Weights scale nothing inside the engine; they feed the
     * weighted fairness/latency reporting on top.
     */
    bool slaWeights = false;

    /** Benchmarks jobs draw from; empty = all Table 2 benchmarks. */
    std::vector<std::string> benchmarkPool;

    bool operator==(const OpenSystemConfig &) const = default;
};

/** Per-context raw counters at one instant of one context's life. */
struct ContextSnapshot
{
    Cycle cycle = 0;
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t flushed = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t partitionLockCycles = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t l2Misses = 0;

    bool operator==(const ContextSnapshot &) const = default;
};

/** One job's full lifecycle record. */
struct JobRecord
{
    int jobId = -1;
    std::string benchmark;
    int priority = 1;               ///< SLA weight (1 unless enabled)
    std::uint64_t instructions = 0; ///< departure bound (committed)
    std::uint64_t streamSeed = 0;   ///< per-job generator entropy

    Cycle arriveCycle = 0;
    Cycle attachCycle = 0;
    Cycle departCycle = 0;
    int context = -1;               ///< hardware context it ran on
    bool attached = false;
    bool completed = false;         ///< reached its bound (vs horizon)

    /**
     * Raw counter snapshots bracketing the job's residency. Per-job
     * stats are the difference — NOT the context's cumulative
     * counters, which keep counting across job lifetimes when a
     * context is reused.
     */
    ContextSnapshot atAttach;
    ContextSnapshot atDepart;

    /** Committed instructions attributable to this job alone. */
    std::uint64_t committed() const
    {
        return atDepart.committed - atAttach.committed;
    }

    /** Resident cycles (attach to depart). */
    Cycle residency() const { return atDepart.cycle - atAttach.cycle; }

    /** Sojourn time (arrival to departure; includes queueing). */
    Cycle latency() const { return departCycle - arriveCycle; }

    /** IPC over the job's own residency window. */
    double ipc() const
    {
        Cycle r = residency();
        return r > 0 ? static_cast<double>(committed()) /
                           static_cast<double>(r)
                     : 0.0;
    }
};

/** Outcome of one open-system run. */
struct OpenSystemResult
{
    OpenSystemConfig config;
    std::string policyName;
    std::vector<JobRecord> jobs;   ///< in arrival order
    Cycle cycles = 0;              ///< total simulated cycles
    std::uint64_t committedTotal = 0;
    int completedJobs = 0;
    int horizonJobs = 0;           ///< closed out by the horizon
    int maxQueueDepth = 0;         ///< peak jobs waiting for a context
};

/** p50/p95/p99 over completed-job latencies. */
struct LatencyStats
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * The open-system engine. Construction pre-generates the arrival
 * schedule from config.seed; run() then drives a fresh machine and
 * the given policy through it.
 */
class OpenSystem
{
  public:
    /**
     * @param machine hardware shape; every context starts idle
     * @param config arrival process and job population parameters
     */
    OpenSystem(const SmtConfig &machine, const OpenSystemConfig &config);

    /** The pre-generated schedule, in arrival order. */
    const std::vector<JobRecord> &schedule() const { return jobs; }

    /**
     * Per-cycle observer (invariant sweeps in the fuzz harness);
     * invoked after every machine step. Not part of run results.
     */
    using CycleObserver = std::function<void(const SmtCpu &)>;
    void setCycleObserver(CycleObserver fn) { observer = std::move(fn); }

    /**
     * Run the scenario under @p policy on a fresh machine.
     * @param trace optional cycle-level event trace for the run's
     *        job.arrive / job.attach / job.depart markers and all
     *        machine/policy events
     * @param trace_pid trace-event process id when @p trace is set
     */
    OpenSystemResult run(ResourcePolicy &policy, EventTrace *trace = nullptr,
                         int trace_pid = 1);

    /**
     * The cold machine run() starts from: placeholder generators on
     * every context (replaced via resetContext before a context ever
     * runs), cycle 0, all counters zero. A pure function of the
     * machine shape and benchmark pool, so sweeps can build it once
     * and restore it per cell (MachineArena) instead of paying the
     * full construction per run.
     */
    SmtCpu makeMachine() const;

    /**
     * Run the scenario on @p cpu, which must be in the makeMachine()
     * state (fresh or arena-restored — restoreFrom drops tracers and
     * observers, runOn re-wires them). run() is exactly makeMachine()
     * + runOn(); the two paths are bit-identical.
     */
    OpenSystemResult runOn(SmtCpu &cpu, ResourcePolicy &policy,
                           EventTrace *trace = nullptr, int trace_pid = 1);

  private:
    SmtConfig machineConfig;
    OpenSystemConfig cfg;
    std::vector<JobRecord> jobs;
    CycleObserver observer;
};

/** @return latency percentiles over completed jobs. */
LatencyStats jobLatencyStats(const OpenSystemResult &result);

/** @return completed jobs per million cycles. */
double jobThroughput(const OpenSystemResult &result);

/**
 * Jain's fairness index (Sigma x)^2 / (n * Sigma x^2) over arbitrary
 * shares; 1.0 = perfectly fair, 1/n = one job got everything.
 * Empty or all-zero input yields 0.
 */
double jainFairness(const std::vector<double> &shares);

/** Per-job IPC divided by priority weight, completed jobs only. */
std::vector<double> priorityWeightedJobIpcs(const OpenSystemResult &result);

} // namespace smthill

#endif // SMTHILL_WORKLOAD_OPEN_SYSTEM_HH
