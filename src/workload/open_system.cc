#include "workload/open_system.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.hh"
#include "common/rng.hh"
#include "trace/spec_profiles.hh"

namespace smthill
{

namespace
{

/** @return the @p p quantile (0 < p <= 1) of sorted @p values. */
double
quantile(const std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    auto n = static_cast<double>(values.size());
    auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
    idx = std::min(idx, values.size() - 1);
    return values[idx];
}

} // namespace

OpenSystem::OpenSystem(const SmtConfig &machine,
                       const OpenSystemConfig &config)
    : machineConfig(machine), cfg(config)
{
    if (cfg.numJobs < 1)
        fatal("OpenSystem: numJobs must be >= 1");
    if (!(cfg.arrivalRate > 0.0))
        fatal("OpenSystem: arrivalRate must be > 0");
    if (cfg.minJobInstructions < 1 ||
        cfg.maxJobInstructions < cfg.minJobInstructions)
        fatal("OpenSystem: bad job instruction bounds");
    if (cfg.epochSize < 1)
        fatal("OpenSystem: epoch size must be >= 1");

    std::vector<std::string> pool = cfg.benchmarkPool;
    if (pool.empty())
        pool = specBenchmarkNames();
    for (const auto &name : pool)
        if (!isSpecBenchmark(name))
            fatal(msg("OpenSystem: unknown benchmark '", name, "'"));

    // The whole schedule is pre-generated from one Rng so a run is a
    // pure function of the config: exponential inter-arrival gaps by
    // inverse transform, then benchmark / bound / priority / stream
    // seed per job, in a fixed draw order.
    Rng rng(cfg.seed);
    Cycle t = 0;
    jobs.reserve(cfg.numJobs);
    for (int j = 0; j < cfg.numJobs; ++j) {
        double u = rng.nextDouble();
        double gap = -std::log1p(-u) / cfg.arrivalRate;
        t += std::max<Cycle>(1, static_cast<Cycle>(gap));

        JobRecord job;
        job.jobId = j;
        job.arriveCycle = t;
        job.benchmark = pool[rng.nextBelow(pool.size())];
        job.instructions =
            cfg.minJobInstructions +
            rng.nextBelow(cfg.maxJobInstructions - cfg.minJobInstructions +
                          1);
        job.priority =
            cfg.slaWeights ? 1 + static_cast<int>(rng.nextBelow(4)) : 1;
        job.streamSeed = rng.next();
        jobs.push_back(std::move(job));
    }
}

SmtCpu
OpenSystem::makeMachine() const
{
    int nt = machineConfig.numThreads;

    // Placeholder generators for the initial (all-idle) contexts;
    // they are replaced via resetContext before a context ever runs.
    std::vector<StreamGenerator> gens;
    gens.reserve(nt);
    std::vector<std::string> pool = cfg.benchmarkPool;
    if (pool.empty())
        pool = specBenchmarkNames();
    for (int i = 0; i < nt; ++i)
        gens.emplace_back(specProfile(pool[0]), 0);

    return SmtCpu(machineConfig, std::move(gens));
}

OpenSystemResult
OpenSystem::run(ResourcePolicy &policy, EventTrace *trace, int trace_pid)
{
    SmtCpu cpu = makeMachine();
    return runOn(cpu, policy, trace, trace_pid);
}

OpenSystemResult
OpenSystem::runOn(SmtCpu &cpu, ResourcePolicy &policy, EventTrace *trace,
                  int trace_pid)
{
    int nt = machineConfig.numThreads;

    if (!trace && policy.eventTrace()) {
        trace = policy.eventTrace();
        trace_pid = policy.eventTracePid();
    }
    if (trace) {
        cpu.setEventTrace(trace, trace_pid);
        policy.setEventTrace(trace, trace_pid);
    }
    for (int i = 0; i < nt; ++i)
        cpu.setThreadEnabled(static_cast<ThreadId>(i), false);
    policy.attach(cpu);

    OpenSystemResult res;
    res.config = cfg;
    res.policyName = policy.name();
    res.jobs = jobs;

    auto snapshotCtx = [&cpu](int tid) {
        auto id = static_cast<ThreadId>(tid);
        ContextSnapshot s;
        s.cycle = cpu.now();
        s.committed = cpu.stats().committed[tid];
        s.fetched = cpu.stats().fetched[tid];
        s.flushed = cpu.stats().flushed[tid];
        s.branches = cpu.stats().branches[tid];
        s.mispredicts = cpu.stats().mispredicts[tid];
        s.partitionLockCycles = cpu.stats().partitionLockCycles[tid];
        s.dl1Misses = cpu.memory().dl1Misses(id);
        s.l2Misses = cpu.memory().l2Misses(id);
        return s;
    };

    std::vector<int> contextJob(nt, -1);
    std::vector<int> waiting; ///< FIFO of arrived, unplaced job indices
    std::size_t nextArrival = 0;
    int done = 0;
    Cycle cycleInEpoch = 0;
    std::uint64_t epochId = 0;

    while (true) {
        Cycle now = cpu.now();

        while (nextArrival < res.jobs.size() &&
               res.jobs[nextArrival].arriveCycle <= now) {
            const JobRecord &job = res.jobs[nextArrival];
            waiting.push_back(static_cast<int>(nextArrival));
            if (trace) {
                Json args = Json::object();
                args.set("job", job.jobId);
                args.set("benchmark", job.benchmark);
                args.set("priority", job.priority);
                args.set("instructions", job.instructions);
                trace->instant(now, trace_pid, kControlTid, "job",
                               "job.arrive", std::move(args));
            }
            ++nextArrival;
        }
        res.maxQueueDepth =
            std::max(res.maxQueueDepth, static_cast<int>(waiting.size()));

        // FIFO placement onto the lowest-numbered free context.
        while (!waiting.empty()) {
            int tid = -1;
            for (int i = 0; i < nt; ++i) {
                if (contextJob[i] < 0) {
                    tid = i;
                    break;
                }
            }
            if (tid < 0)
                break;
            int j = waiting.front();
            waiting.erase(waiting.begin());
            JobRecord &job = res.jobs[j];
            job.context = tid;
            job.attached = true;
            job.attachCycle = now;
            cpu.resetContext(static_cast<ThreadId>(tid),
                             StreamGenerator(specProfile(job.benchmark),
                                             job.streamSeed));
            job.atAttach = snapshotCtx(tid);
            contextJob[tid] = j;
            if (trace) {
                Json args = Json::object();
                args.set("job", job.jobId);
                args.set("context", tid);
                args.set("waited", now - job.arriveCycle);
                trace->instant(now, trace_pid, tid, "job", "job.attach",
                               std::move(args));
            }
            policy.threadAttached(cpu, static_cast<ThreadId>(tid));
        }

        if (done == static_cast<int>(res.jobs.size()))
            break;
        if (cfg.horizon > 0 && now >= cfg.horizon)
            break;

        policy.cycle(cpu);
        cpu.step();
        if (observer)
            observer(cpu);

        for (int tid = 0; tid < nt; ++tid) {
            int j = contextJob[tid];
            if (j < 0)
                continue;
            JobRecord &job = res.jobs[j];
            if (cpu.stats().committed[tid] - job.atAttach.committed <
                job.instructions)
                continue;
            cpu.idleContext(static_cast<ThreadId>(tid));
            job.atDepart = snapshotCtx(tid);
            job.departCycle = cpu.now();
            job.completed = true;
            contextJob[tid] = -1;
            ++done;
            if (trace) {
                Json args = Json::object();
                args.set("job", job.jobId);
                args.set("context", tid);
                args.set("committed", job.committed());
                args.set("residency", job.residency());
                trace->instant(cpu.now(), trace_pid, tid, "job",
                               "job.depart", std::move(args));
            }
            policy.threadDetached(cpu, static_cast<ThreadId>(tid));
        }

        if (++cycleInEpoch >= cfg.epochSize) {
            cycleInEpoch = 0;
            policy.epoch(cpu, epochId++);
        }
    }

    // Close out whatever the horizon interrupted: jobs still resident
    // get a final snapshot; jobs never placed keep zero residency.
    Cycle end = cpu.now();
    for (auto &job : res.jobs) {
        if (job.completed) {
            ++res.completedJobs;
            continue;
        }
        ++res.horizonJobs;
        job.departCycle = end;
        if (job.attached && job.context >= 0 &&
            contextJob[job.context] == job.jobId)
            job.atDepart = snapshotCtx(job.context);
    }
    res.cycles = end;
    res.committedTotal = cpu.stats().committedTotal();
    return res;
}

LatencyStats
jobLatencyStats(const OpenSystemResult &result)
{
    std::vector<double> lat;
    lat.reserve(result.jobs.size());
    for (const auto &job : result.jobs)
        if (job.completed)
            lat.push_back(static_cast<double>(job.latency()));
    std::sort(lat.begin(), lat.end());
    LatencyStats s;
    s.p50 = quantile(lat, 0.50);
    s.p95 = quantile(lat, 0.95);
    s.p99 = quantile(lat, 0.99);
    return s;
}

double
jobThroughput(const OpenSystemResult &result)
{
    if (result.cycles == 0)
        return 0.0;
    return static_cast<double>(result.completedJobs) * 1e6 /
           static_cast<double>(result.cycles);
}

double
jainFairness(const std::vector<double> &shares)
{
    double sum = 0.0;
    double sumsq = 0.0;
    for (double x : shares) {
        sum += x;
        sumsq += x * x;
    }
    if (shares.empty() || sumsq <= 0.0)
        return 0.0;
    return sum * sum / (static_cast<double>(shares.size()) * sumsq);
}

std::vector<double>
priorityWeightedJobIpcs(const OpenSystemResult &result)
{
    std::vector<double> out;
    out.reserve(result.jobs.size());
    for (const auto &job : result.jobs)
        if (job.completed)
            out.push_back(job.ipc() / static_cast<double>(job.priority));
    return out;
}

} // namespace smthill
