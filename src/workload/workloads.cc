#include "workload/workloads.hh"

#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "memory/hierarchy.hh" // kMaxThreads
#include "trace/spec_profiles.hh"

namespace smthill
{

namespace
{

Workload
make(const char *group, std::initializer_list<const char *> names,
     bool reconstructed = false)
{
    Workload w;
    w.group = group;
    w.reconstructed = reconstructed;
    std::ostringstream nm;
    bool first = true;
    for (const char *n : names) {
        w.benchmarks.emplace_back(n);
        if (!first)
            nm << '-';
        nm << n;
        first = false;
    }
    w.name = nm.str();
    return w;
}

std::vector<Workload>
buildAll()
{
    std::vector<Workload> v;

    // --- 2-thread workloads (verbatim from Table 3) ----------------
    v.push_back(make("ILP2", {"apsi", "eon"}));
    v.push_back(make("ILP2", {"fma3d", "gcc"}));
    v.push_back(make("ILP2", {"gzip", "vortex"}));
    v.push_back(make("ILP2", {"wupwise", "gcc"}));
    v.push_back(make("ILP2", {"gzip", "bzip2"}));
    v.push_back(make("ILP2", {"fma3d", "mesa"}));
    v.push_back(make("ILP2", {"apsi", "gcc"}));

    v.push_back(make("MIX2", {"applu", "vortex"}));
    v.push_back(make("MIX2", {"art", "gzip"}));
    v.push_back(make("MIX2", {"wupwise", "twolf"}));
    v.push_back(make("MIX2", {"lucas", "crafty"}));
    v.push_back(make("MIX2", {"mcf", "eon"}));
    v.push_back(make("MIX2", {"twolf", "apsi"}));
    v.push_back(make("MIX2", {"equake", "bzip2"}));

    v.push_back(make("MEM2", {"applu", "ammp"}));
    v.push_back(make("MEM2", {"art", "mcf"}));
    v.push_back(make("MEM2", {"swim", "twolf"}));
    v.push_back(make("MEM2", {"mcf", "twolf"}));
    v.push_back(make("MEM2", {"art", "vpr"}));
    v.push_back(make("MEM2", {"art", "twolf"}));
    v.push_back(make("MEM2", {"swim", "mcf"}));

    // --- 4-thread workloads ----------------------------------------
    v.push_back(make("ILP4", {"apsi", "eon", "fma3d", "gcc"}));
    v.push_back(make("ILP4", {"apsi", "eon", "gzip", "vortex"}));
    v.push_back(make("ILP4", {"fma3d", "gcc", "gzip", "vortex"}));
    v.push_back(make("ILP4", {"mesa", "bzip2", "eon", "gcc"}, true));
    v.push_back(make("ILP4", {"mesa", "gzip", "fma3d", "bzip2"}, true));
    v.push_back(make("ILP4", {"crafty", "fma3d", "apsi", "vortex"}));
    v.push_back(make("ILP4", {"apsi", "gap", "wupwise", "perlbmk"}));

    v.push_back(make("MIX4", {"ammp", "applu", "apsi", "eon"}));
    v.push_back(make("MIX4", {"art", "mcf", "fma3d", "gcc"}));
    v.push_back(make("MIX4", {"swim", "twolf", "gzip", "vortex"}));
    v.push_back(make("MIX4", {"gzip", "twolf", "bzip2", "mcf"}));
    v.push_back(make("MIX4", {"mcf", "mesa", "lucas", "gzip"}));
    v.push_back(make("MIX4", {"art", "gap", "twolf", "crafty"}, true));
    v.push_back(make("MIX4", {"swim", "mcf", "vpr", "crafty"}, true));

    v.push_back(make("MEM4", {"ammp", "applu", "art", "mcf"}));
    v.push_back(make("MEM4", {"art", "mcf", "swim", "twolf"}));
    v.push_back(make("MEM4", {"ammp", "applu", "swim", "twolf"}));
    v.push_back(make("MEM4", {"mcf", "twolf", "vpr", "parser"}));
    v.push_back(make("MEM4", {"art", "twolf", "equake", "mcf"}));
    v.push_back(make("MEM4", {"equake", "parser", "mcf", "lucas"}));
    v.push_back(make("MEM4", {"art", "mcf", "vpr", "swim"}));

    return v;
}

} // namespace

int
Workload::paperRscSum() const
{
    int sum = 0;
    for (const auto &b : benchmarks)
        sum += specInfo(b).paperRsc;
    return sum;
}

std::vector<StreamGenerator>
Workload::makeGenerators(std::uint64_t seed_salt) const
{
    std::vector<StreamGenerator> gens;
    gens.reserve(benchmarks.size());
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        gens.emplace_back(specProfile(benchmarks[i]),
                          seed_salt * 131 + i);
    }
    return gens;
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = buildAll();
    return all;
}

std::vector<Workload>
twoThreadWorkloads()
{
    std::vector<Workload> out;
    for (const auto &w : allWorkloads())
        if (w.numThreads() == 2)
            out.push_back(w);
    return out;
}

std::vector<Workload>
fourThreadWorkloads()
{
    std::vector<Workload> out;
    for (const auto &w : allWorkloads())
        if (w.numThreads() == 4)
            out.push_back(w);
    return out;
}

std::vector<Workload>
workloadsInGroup(const std::string &group)
{
    std::vector<Workload> out;
    for (const auto &w : allWorkloads())
        if (w.group == group)
            out.push_back(w);
    if (out.empty())
        fatal(msg("unknown workload group: ", group));
    return out;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal(msg("unknown workload: ", name));
}

const std::vector<std::string> &
workloadGroups()
{
    static const std::vector<std::string> groups = {
        "ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"};
    return groups;
}

Workload
makeCustomWorkload(const std::vector<std::string> &benchmarks)
{
    if (benchmarks.empty() ||
        benchmarks.size() > static_cast<std::size_t>(kMaxThreads))
        fatal("makeCustomWorkload: need 1..8 benchmarks");
    Workload w;
    int mem = 0;
    std::ostringstream nm;
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        mem += specInfo(benchmarks[i]).isMem; // validates the name
        w.benchmarks.push_back(benchmarks[i]);
        if (i)
            nm << '-';
        nm << benchmarks[i];
    }
    w.name = nm.str();
    const char *kind = mem == 0 ? "ILP"
                       : mem == static_cast<int>(benchmarks.size())
                           ? "MEM"
                           : "MIX";
    w.group = std::string(kind) + std::to_string(benchmarks.size());
    return w;
}

Workload
randomWorkload(int threads, std::uint64_t seed)
{
    if (threads < 1 || threads > kMaxThreads)
        fatal("randomWorkload: bad thread count");
    Rng rng(seed * 0x9e37'79b9'7f4a'7c15ULL + 1);
    const auto &names = specBenchmarkNames();
    std::vector<std::string> picked;
    while (static_cast<int>(picked.size()) < threads) {
        const std::string &cand =
            names[rng.nextBelow(names.size())];
        bool dup = false;
        for (const auto &p : picked)
            dup = dup || p == cand;
        if (!dup)
            picked.push_back(cand);
    }
    return makeCustomWorkload(picked);
}

} // namespace smthill
