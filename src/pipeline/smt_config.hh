/**
 * @file
 * SMT core configuration, defaulting to the paper's Table 1 machine:
 * 8-fetch/8-issue/8-commit, 32-entry IFQ, 80-entry int and fp IQs,
 * 256-entry LSQ, 256 int + 256 fp rename registers, 512-entry shared
 * ROB, 6 int adders, 3 int mul/div, 4 memory ports, 3 fp adders,
 * 3 fp mul/div, and the Table 1 memory system.
 */

#ifndef SMTHILL_PIPELINE_SMT_CONFIG_HH
#define SMTHILL_PIPELINE_SMT_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "memory/hierarchy.hh"

namespace smthill
{

/** All structural and latency parameters of the simulated machine. */
struct SmtConfig
{
    int numThreads = 2;

    // Bandwidths (Table 1 "Bandwidth" row).
    int fetchWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    int fetchThreadsPerCycle = 2;   ///< ICOUNT.2.8 fetch partitioning

    // Queue and window sizes (Table 1 "Queue size" / "Rename/ROB").
    int ifqSize = 32;
    int intIqSize = 80;
    int fpIqSize = 80;
    int lsqSize = 256;
    int intRegs = 256;
    int fpRegs = 256;
    int robSize = 512;

    // Functional unit pools (Table 1 "Functional unit").
    int intAddUnits = 6;
    int intMulUnits = 3;
    int memPorts = 4;
    int fpAddUnits = 3;
    int fpMulUnits = 3;

    // Execution latencies (cycles).
    Cycle intAluLatency = 1;
    Cycle intMulLatency = 3;
    Cycle fpAluLatency = 2;
    Cycle fpMulLatency = 4;
    Cycle branchLatency = 1;
    Cycle storeLatency = 1;

    /** Front-end refill penalty after a resolved mispredict. */
    Cycle mispredictRedirect = 8;

    // Branch predictor sizing (Table 1 "Branch predictor" rows).
    std::size_t gshareEntries = 8192;
    std::size_t bimodalEntries = 2048;
    std::size_t metaEntries = 8192;
    std::size_t btbEntries = 2048;
    std::size_t btbWays = 4;
    std::size_t rasEntries = 64;

    MemoryConfig mem;

    /** Abort if the configuration is internally inconsistent. */
    void validate() const;

    /** Field-wise ordering/equality (warm-machine cache keys). */
    auto operator<=>(const SmtConfig &) const = default;
};

} // namespace smthill

#endif // SMTHILL_PIPELINE_SMT_CONFIG_HH
