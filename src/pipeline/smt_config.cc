#include "pipeline/smt_config.hh"

#include "common/log.hh"

namespace smthill
{

void
SmtConfig::validate() const
{
    if (numThreads < 1 || numThreads > kMaxThreads)
        fatal(msg("SmtConfig: numThreads must be in [1, ", kMaxThreads,
                  "]"));
    if (fetchWidth < 1 || issueWidth < 1 || commitWidth < 1)
        fatal("SmtConfig: widths must be positive");
    if (fetchThreadsPerCycle < 1)
        fatal("SmtConfig: fetchThreadsPerCycle must be positive");
    if (ifqSize < fetchWidth)
        fatal("SmtConfig: IFQ smaller than one fetch group");
    if (intIqSize < 1 || fpIqSize < 1 || lsqSize < 1 || robSize < 1)
        fatal("SmtConfig: queue sizes must be positive");
    if (intRegs < numThreads)
        fatal("SmtConfig: fewer int rename registers than threads");
    if (fpRegs < 1)
        fatal("SmtConfig: fpRegs must be positive");
    if (intAddUnits < 1 || memPorts < 1)
        fatal("SmtConfig: need at least one int ALU and one mem port");
}

} // namespace smthill
