/**
 * @file
 * The partitioned-resource abstraction of Section 3.1.2.
 *
 * Learning-based distribution partitions a single "unit" resource —
 * the integer rename registers — and applies the same per-thread
 * fractions proportionally to the integer IQ and the ROB. A Partition
 * is therefore a per-thread allocation of integer rename registers
 * summing to the machine total; DerivedLimits expands it to concrete
 * per-thread caps on all three partitioned structures.
 */

#ifndef SMTHILL_PIPELINE_RESOURCES_HH
#define SMTHILL_PIPELINE_RESOURCES_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "memory/hierarchy.hh" // kMaxThreads

namespace smthill
{

struct SmtConfig;

/** Per-thread allocation of the unit resource (int rename regs). */
struct Partition
{
    std::array<int, kMaxThreads> share{};
    int numThreads = 0;

    /** @return an equal split of @p total across @p threads. */
    static Partition equal(int threads, int total);

    /** @return allocation of thread @p tid. */
    int of(ThreadId tid) const { return share[tid]; }

    /** @return the sum of all shares. */
    int total() const;

    /**
     * Clamp every share into [min_share, +inf) while preserving the
     * total, taking the excess from the largest shares. Used by the
     * hill-climber so no thread is ever starved below Delta.
     */
    void clampMin(int min_share);

    /** @return a short "a/b/c" string for logs and tables. */
    std::string str() const;

    bool operator==(const Partition &) const = default;
};

/** Concrete per-thread caps on the three partitioned structures. */
struct DerivedLimits
{
    std::array<int, kMaxThreads> intRegs{};
    std::array<int, kMaxThreads> intIq{};
    std::array<int, kMaxThreads> rob{};
};

/**
 * Expand a Partition into per-structure caps using the proportional
 * rule of Section 3.1.2. Every cap is at least 1 so a thread with a
 * nonzero register share can always make forward progress.
 */
DerivedLimits deriveLimits(const Partition &partition,
                           const SmtConfig &config);

/** Per-thread occupancy counters for all shared structures. */
struct Occupancy
{
    std::array<int, kMaxThreads> intIq{};
    std::array<int, kMaxThreads> fpIq{};
    std::array<int, kMaxThreads> intRegs{};
    std::array<int, kMaxThreads> fpRegs{};
    std::array<int, kMaxThreads> rob{};
    std::array<int, kMaxThreads> lsq{};
    std::array<int, kMaxThreads> ifq{};

    int totalIntIq() const;
    int totalFpIq() const;
    int totalIntRegs() const;
    int totalFpRegs() const;
    int totalRob() const;
    int totalLsq() const;
    int totalIfq() const;
};

/**
 * Machine-wide occupancy totals, maintained incrementally alongside
 * the per-thread Occupancy counters. The dispatch and fetch stages
 * test shared-capacity limits against these every attempt; keeping
 * them as running sums removes the per-attempt re-summation of the
 * per-thread arrays. Always recomputable from an Occupancy, which is
 * what the invariant checker does to validate the increments.
 */
struct OccupancyTotals
{
    int intIq = 0;
    int fpIq = 0;
    int intRegs = 0;
    int fpRegs = 0;
    int rob = 0;
    int lsq = 0;
    int ifq = 0;

    /** @return totals re-summed from scratch. */
    static OccupancyTotals of(const Occupancy &occ);

    bool operator==(const OccupancyTotals &) const = default;
};

} // namespace smthill

#endif // SMTHILL_PIPELINE_RESOURCES_HH
