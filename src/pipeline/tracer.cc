#include "pipeline/tracer.hh"

#include "common/log.hh"

namespace smthill
{

const char *
traceStageName(TraceStage stage)
{
    switch (stage) {
      case TraceStage::Fetch:
        return "fetch";
      case TraceStage::Dispatch:
        return "dispatch";
      case TraceStage::Issue:
        return "issue";
      case TraceStage::Complete:
        return "complete";
      case TraceStage::Commit:
        return "commit";
      case TraceStage::Squash:
        return "squash";
    }
    return "?";
}

PipelineTracer::PipelineTracer(std::size_t capacity) : ring(capacity)
{
    if (capacity == 0)
        fatal("PipelineTracer: capacity must be positive");
}

void
PipelineTracer::record(const TraceEvent &event)
{
    ++offeredCount;
    if (threadFilter >= 0 &&
        event.tid != static_cast<ThreadId>(threadFilter))
        return;
    if (!(stageMask & (std::uint32_t{1}
                       << static_cast<std::uint32_t>(event.stage))))
        return;
    ring[head] = event;
    head = (head + 1) % ring.size();
    if (count < ring.size())
        ++count;
}

std::vector<TraceEvent>
PipelineTracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count);
    std::size_t start = (head + ring.size() - count) % ring.size();
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

std::size_t
PipelineTracer::size() const
{
    return count;
}

void
PipelineTracer::clear()
{
    head = 0;
    count = 0;
}

void
PipelineTracer::dump(std::FILE *out) const
{
    for (const TraceEvent &e : events()) {
        std::fprintf(out, "%10llu t%u %-8s seq=%llu pc=0x%llx %s\n",
                     static_cast<unsigned long long>(e.cycle), e.tid,
                     traceStageName(e.stage),
                     static_cast<unsigned long long>(e.seq),
                     static_cast<unsigned long long>(e.pc),
                     opClassName(e.op));
    }
}

} // namespace smthill
