/**
 * @file
 * The out-of-order SMT processor model (Figure 3).
 *
 * The core models the pipeline the paper simulates: ICOUNT-driven
 * fetch of up to 8 instructions from up to 2 threads per cycle into a
 * shared 32-entry IFQ; rename/dispatch into the integer/fp issue
 * queues, rename register files, shared ROB, and LSQ; event-driven
 * wakeup and 8-wide issue constrained by the Table 1 functional-unit
 * pools; cache-accurate load latencies; and 8-wide in-order
 * per-thread commit. Per-thread occupancy counters and partition
 * registers implement the fetch-lock partition enforcement of
 * Section 3.2; flushThreadAfter() implements the FLUSH policy's
 * squash; setThreadEnabled() implements SingleIPC sampling epochs;
 * and stallUntil() charges the hill-climber's software cost.
 *
 * SmtCpu has value semantics: copying it checkpoints the entire
 * machine (pipeline, caches, predictors, instruction generators, and
 * statistics), which is how OFF-LINE exhaustive learning, RAND-HILL,
 * and the synchronized comparisons of Figures 5, 11, and 12 work.
 */

#ifndef SMTHILL_PIPELINE_CPU_HH
#define SMTHILL_PIPELINE_CPU_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "branch/predictors.hh"
#include "common/event_trace.hh"
#include "common/types.hh"
#include "memory/hierarchy.hh"
#include "pipeline/resources.hh"
#include "pipeline/smt_config.hh"
#include "pipeline/tracer.hh"
#include "trace/instruction.hh"
#include "trace/stream_generator.hh"

namespace smthill
{

/** Cumulative per-machine statistics; read-diff across an interval. */
struct CpuStats
{
    std::array<std::uint64_t, kMaxThreads> committed{};
    std::array<std::uint64_t, kMaxThreads> fetched{};
    std::array<std::uint64_t, kMaxThreads> flushed{};
    std::array<std::uint64_t, kMaxThreads> branches{};
    std::array<std::uint64_t, kMaxThreads> mispredicts{};
    std::array<std::uint64_t, kMaxThreads> loads{};
    std::array<std::uint64_t, kMaxThreads> partitionLockCycles{};
    std::uint64_t stalledCycles = 0; ///< cycles frozen by stallUntil()
    std::uint64_t committedTotal() const;
};

/** An in-flight load that missed the DL1 (policy monitors). */
struct OutstandingMiss
{
    InstSeq seq = 0;
    Cycle issuedAt = 0;
    Cycle completesAt = 0;
    bool toMemory = false;   ///< missed the L2 as well
};

/** Per-committed-branch record handed to phase-tracking observers. */
struct CommittedBranch
{
    ThreadId tid;
    std::uint32_t blockId;
    std::uint32_t blockLength;
};

/**
 * Load lifecycle event for policy observers (e.g., PDG's cache-miss
 * predictor): fired once when a load dispatches (completed == false;
 * miss outcome unknown) and once when it completes (completed ==
 * true; missedDl1/toMemory valid).
 */
struct LoadEvent
{
    ThreadId tid;
    InstSeq seq;
    Addr pc;
    bool completed;
    bool missedDl1;
    bool toMemory;
};

/** The SMT processor. */
class SmtCpu
{
  public:
    /**
     * @param config machine parameters (validated)
     * @param programs one stream generator per hardware context;
     *        size must equal config.numThreads
     */
    SmtCpu(const SmtConfig &config, std::vector<StreamGenerator> programs);

    /**
     * Restore this machine to @p checkpoint's exact simulated state,
     * reusing this machine's existing allocations (instruction rings,
     * dependence vectors, cache arrays) instead of making fresh ones —
     * the cheap path trial sweeps restore through instead of
     * copy-constructing an SmtCpu per trial. The restored machine
     * runs unobserved: tracer, branch/load observers, and the event
     * trace link are all dropped, because trials replay concurrently
     * and observation belongs to the committing machine (same
     * semantics as runFixedPartitionEpoch's trial path).
     */
    void restoreFrom(const SmtCpu &checkpoint);

    /** Advance the machine by one cycle. */
    void step();

    /** Advance the machine by @p n cycles. */
    void run(Cycle n);

    /** @return current simulated cycle. */
    Cycle now() const { return curCycle; }

    /** @return number of hardware contexts. */
    int numThreads() const { return cfg.numThreads; }

    const SmtConfig &config() const { return cfg; }
    const CpuStats &stats() const { return statCounters; }
    const Occupancy &occupancy() const { return occ; }
    const OccupancyTotals &occupancyTotals() const { return occT; }
    const MemoryHierarchy &memory() const { return mem; }

    // --- Partition control (Section 3.1.2 / 3.2) -------------------

    /** Enable partition enforcement and install the given shares. */
    void setPartition(const Partition &partition);

    /** Disable partition enforcement (full sharing). */
    void clearPartition();

    /** @return true when partition limits are being enforced. */
    bool partitioningEnabled() const { return partitionOn; }

    /** @return the active partition (meaningful when enabled). */
    const Partition &partition() const { return curPartition; }

    // --- Policy hooks ----------------------------------------------

    /** Fetch-lock or unlock a thread (FLUSH/STALL/DCRA control). */
    void setFetchLocked(ThreadId tid, bool locked);

    /** @return true if the policy has fetch-locked @p tid. */
    bool fetchLocked(ThreadId tid) const;

    /**
     * Squash every in-flight instruction of @p tid younger than
     * @p seq, releasing their resources; fetch resumes at seq + 1.
     * Implements FLUSH's recovery. @return instructions squashed.
     */
    int flushThreadAfter(ThreadId tid, InstSeq seq);

    /** Enable or disable a thread (SingleIPC sampling epochs). */
    void setThreadEnabled(ThreadId tid, bool enabled);

    /**
     * Rebind hardware context @p tid to a fresh instruction stream
     * (open-system job arrival on a possibly-reused context). Every
     * in-flight instruction of the old occupant is squashed, counted
     * into the flushed stats (it was fetched and discarded, and the
     * fetched == committed + flushed + in-flight flow identity must
     * survive a reset), and its resources released; the per-thread
     * branch predictor is reset so the new job
     * does not inherit the departed job's history. Cache contents
     * stay warm (a real context switch does not flash-invalidate the
     * caches). The context comes back fetch-unlocked and enabled;
     * cumulative per-thread counters keep counting, so per-job
     * accounting must snapshot deltas around the job's residency.
     * @return in-flight instructions squashed.
     */
    int resetContext(ThreadId tid, StreamGenerator gen);

    /**
     * Park hardware context @p tid after its job departed: squash any
     * in-flight instructions past the job's bound (counted as flushed,
     * like any other squash) so the idle context holds no shared
     * resources, then disable it. A later resetContext() brings it
     * back for the next job. @return in-flight instructions squashed.
     */
    int idleContext(ThreadId tid);

    /** @return true if the thread is fetching/dispatching. */
    bool threadEnabled(ThreadId tid) const;

    /** Freeze all pipeline stages until cycle @p until. */
    void stallUntil(Cycle until);

    /** In-flight DL1 misses of @p tid, oldest first. */
    const std::vector<OutstandingMiss> &
    outstandingMisses(ThreadId tid) const
    {
        return threads[tid].misses;
    }

    /** @return count of in-flight DL1 misses of @p tid. */
    int dl1MissesInFlight(ThreadId tid) const
    {
        return static_cast<int>(threads[tid].misses.size());
    }

    /** @return instructions in pre-issue stages (ICOUNT's counter). */
    int frontEndCount(ThreadId tid) const;

    /**
     * Register an observer invoked once per committed branch (phase
     * detection BBVs). Pass nullptr to detach. The observer is NOT
     * part of the checkpointed machine state.
     */
    using BranchObserver = void (*)(void *ctx, const CommittedBranch &);
    void setBranchObserver(BranchObserver fn, void *ctx);

    /**
     * Register an observer invoked at load dispatch and completion
     * (PDG-style miss predictors). Pass nullptr to detach. Not part
     * of the checkpointed machine state.
     */
    using LoadObserver = void (*)(void *ctx, const LoadEvent &);
    void setLoadObserver(LoadObserver fn, void *ctx);

    /**
     * Attach a pipeline tracer (nullptr detaches). The tracer is a
     * debugging aid owned by the caller; it is NOT checkpointed, and
     * machine copies share the same tracer pointer.
     */
    void setTracer(PipelineTracer *t) { tracer = t; }

    /**
     * Attach a cycle-level event trace (nullptr detaches). Owned by
     * the caller and deliberately NOT checkpointed: copying the
     * machine drops the link (EventTraceRef semantics), so offline
     * trial sweeps and synchronized-comparison clones never
     * interleave events into the committing run's stream.
     * @param pid trace-event process id the machine's events file
     *        under (one per workload/technique)
     */
    void
    setEventTrace(EventTrace *t, int pid)
    {
        evtRef.trace = t;
        evtRef.pid = t ? pid : 0;
    }

    /** @return the attached event trace, or nullptr. */
    EventTrace *eventTrace() const { return evtRef.trace; }

    /** @return the trace-event process id of the attached trace. */
    int eventTracePid() const { return evtRef.pid; }

  private:
    static constexpr InstSeq kNoSeq = ~InstSeq{0};

    /** Reference to a dependent instruction's slot incarnation. */
    struct DepRef
    {
        std::uint32_t slot;
        std::uint32_t genId;
    };

    /** Dynamic state of one in-flight (or replay-buffered) inst. */
    struct Slot
    {
        SynthInst si;
        InstSeq seq = 0;
        Cycle fetchCycle = 0;
        Cycle completeCycle = 0;
        HybridPredictor::Lookup bp;
        std::vector<DepRef> dependents;
        std::uint32_t genId = 0;
        std::uint8_t pendingSrcs = 0;
        std::uint8_t state = 0;       ///< SlotState
        bool mispredicted = false;
        bool holdsIntIq = false;
        bool holdsFpIq = false;
        bool holdsIntReg = false;
        bool holdsFpReg = false;
        bool holdsLsq = false;
        bool holdsRob = false;
    };

    enum SlotState : std::uint8_t
    {
        SlotFree = 0,
        SlotFetched,     ///< in the IFQ
        SlotDispatched,  ///< waiting in an issue queue
        SlotIssued,      ///< executing
        SlotCompleted    ///< awaiting commit
    };

    /** Architectural + microarchitectural state of one context. */
    struct ThreadState
    {
        explicit ThreadState(StreamGenerator g) : gen(std::move(g)) {}

        StreamGenerator gen;
        std::vector<Slot> ring;   ///< indexed by seq & ringMask

        InstSeq genSeq = 0;      ///< next seq to synthesize
        InstSeq fetchSeq = 0;    ///< next seq to fetch
        InstSeq dispatchSeq = 0; ///< next seq to dispatch
        InstSeq commitSeq = 0;   ///< next seq to commit

        Cycle fetchReadyAt = 0;   ///< IL1 miss / redirect gate
        InstSeq blockingBranch = kNoSeq; ///< unresolved mispredict
        bool policyLocked = false;
        bool enabled = true;

        std::vector<OutstandingMiss> misses; ///< in-flight DL1 misses
    };

    struct ReadyEntry
    {
        Cycle readyAt;
        Cycle age;        ///< fetch cycle (older issues first)
        ThreadId tid;
        std::uint32_t slot;
        std::uint32_t genId;
    };

    struct CompletionEvent
    {
        Cycle at;
        ThreadId tid;
        std::uint32_t slot;
        std::uint32_t genId;
        bool operator>(const CompletionEvent &o) const { return at > o.at; }
    };

    Slot &slotOf(ThreadState &t, InstSeq seq)
    {
        return t.ring[seq & ringMask];
    }
    std::uint32_t slotIndex(InstSeq seq) const
    {
        return static_cast<std::uint32_t>(seq & ringMask);
    }

    // Pipeline stages, in reverse order within step().
    void doCommit();
    void doCompletions();
    void doIssue();
    void doDispatch();
    void doFetch();

    /** Order threads by ascending front-end count (ICOUNT). */
    void fetchOrder(std::array<ThreadId, kMaxThreads> &order) const;

    /** @return true if @p tid may fetch this cycle. */
    bool canFetch(const ThreadState &t, ThreadId tid) const;

    /** @return true if @p tid is at a partition limit (fetch gate). */
    bool partitionBlocked(ThreadId tid) const;

    /** Ensure the instruction at @p seq exists in the replay window. */
    void ensureGenerated(ThreadState &t, InstSeq seq);

    /** Try to dispatch the next instruction of @p tid; @return ok. */
    bool dispatchOne(ThreadId tid);

    /** Hook up the dependences of a newly dispatched instruction. */
    void linkDependences(ThreadId tid, InstSeq seq, Slot &slot);

    /** Mark a slot completed and wake its dependents. */
    void complete(ThreadId tid, std::uint32_t slot_idx);

    /** Release whatever resources a slot still holds. */
    void releaseResources(ThreadId tid, Slot &slot);

    /**
     * Squash every in-flight instruction of @p tid at or after
     * @p start, releasing resources and bumping slot generations so
     * queued wakeup/completion events go stale. Every squashed
     * instruction counts into the flushed stats, whether a policy
     * flush or a context reset/park discarded it: the
     * fetched == committed + flushed + in-flight flow identity must
     * hold across job lifetimes.
     */
    int squashFrom(ThreadId tid, InstSeq start);

    SmtConfig cfg;
    MemoryHierarchy mem;
    std::vector<ThreadState> threads;
    std::vector<HybridPredictor> predictors;
    Btb btb;

    Occupancy occ;
    OccupancyTotals occT; ///< running sums of occ, kept in lockstep
    Partition curPartition;
    DerivedLimits limits;
    bool partitionOn = false;

    Cycle curCycle = 0;
    Cycle stalledUntil = 0;
    std::uint64_t ringMask = 0;
    std::uint32_t rrDispatch = 0; ///< round-robin dispatch start
    std::uint32_t rrCommit = 0;   ///< round-robin commit start

    std::vector<ReadyEntry> readyList;
    /**
     * True when readyList is in issue order. Issue filters the sorted
     * list (order-preserving), so only wakeups dirty it; sorting the
     * same strict total order (age, tid, slot) again would reproduce
     * the identical sequence, making the skip bit-exact.
     */
    bool readySorted = true;
    /** Scratch for doIssue's retained entries; cleared after use. */
    std::vector<ReadyEntry> issueScratch;
    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        std::greater<CompletionEvent>>
        events;

    CpuStats statCounters;

    BranchObserver branchObserver = nullptr;
    void *branchObserverCtx = nullptr;
    LoadObserver loadObserver = nullptr;
    void *loadObserverCtx = nullptr;
    PipelineTracer *tracer = nullptr;
    EventTraceRef evtRef;   ///< cycle-level event trace; drops on copy

    /** Record a pipeline trace event if a tracer is attached. */
    void
    trace(TraceStage stage, ThreadId tid, const Slot &slot)
    {
        if (tracer) {
            tracer->record(TraceEvent{curCycle, slot.seq, slot.si.pc,
                                      stage, tid, slot.si.op});
        }
    }
};

} // namespace smthill

#endif // SMTHILL_PIPELINE_CPU_HH
