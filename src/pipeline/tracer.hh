/**
 * @file
 * Pipeline event tracing: an optional, bounded ring buffer of
 * per-instruction stage events (fetch, dispatch, issue, complete,
 * commit, squash) with thread and stage filters. Intended for
 * debugging policies and for the occupancy-timeline example; the
 * tracer is not part of the checkpointed machine state.
 */

#ifndef SMTHILL_PIPELINE_TRACER_HH
#define SMTHILL_PIPELINE_TRACER_HH

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/types.hh"

namespace smthill
{

/** Pipeline stages an instruction passes through (or squash). */
enum class TraceStage : std::uint8_t
{
    Fetch,
    Dispatch,
    Issue,
    Complete,
    Commit,
    Squash
};

/** @return a short printable stage name. */
const char *traceStageName(TraceStage stage);

/** One recorded pipeline event. */
struct TraceEvent
{
    Cycle cycle = 0;
    InstSeq seq = 0;
    Addr pc = 0;
    TraceStage stage = TraceStage::Fetch;
    ThreadId tid = 0;
    OpClass op = OpClass::IntAlu;
};

/** Bounded, filtered event recorder. */
class PipelineTracer
{
  public:
    /** @param capacity maximum retained events (ring buffer) */
    explicit PipelineTracer(std::size_t capacity = 4096);

    /** Record one event (honoring the filters). */
    void record(const TraceEvent &event);

    /** Keep only events of @p tid (negative = all threads). */
    void filterThread(int tid) { threadFilter = tid; }

    /** Keep only stages whose bit is set (bit = stage enum value). */
    void filterStages(std::uint32_t mask) { stageMask = mask; }

    /** @return retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** @return number of retained events. */
    std::size_t size() const;

    /** @return total events offered (including filtered/evicted). */
    std::uint64_t offered() const { return offeredCount; }

    /** Discard all retained events. */
    void clear();

    /** Write retained events as text lines to @p out. */
    void dump(std::FILE *out) const;

  private:
    std::vector<TraceEvent> ring;
    std::size_t head = 0;   ///< next write position
    std::size_t count = 0;  ///< retained events
    std::uint64_t offeredCount = 0;
    int threadFilter = -1;
    std::uint32_t stageMask = ~std::uint32_t{0};
};

} // namespace smthill

#endif // SMTHILL_PIPELINE_TRACER_HH
