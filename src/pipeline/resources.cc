#include "pipeline/resources.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/log.hh"
#include "pipeline/smt_config.hh"

namespace smthill
{

Partition
Partition::equal(int threads, int total)
{
    if (threads < 1 || threads > kMaxThreads)
        fatal("Partition::equal: bad thread count");
    Partition p;
    p.numThreads = threads;
    int base = total / threads;
    int extra = total % threads;
    for (int i = 0; i < threads; ++i)
        p.share[i] = base + (i < extra ? 1 : 0);
    return p;
}

int
Partition::total() const
{
    int sum = 0;
    for (int i = 0; i < numThreads; ++i)
        sum += share[i];
    return sum;
}

void
Partition::clampMin(int min_share)
{
    if (numThreads < 1)
        return;
    // An infeasible floor (min_share * numThreads > total) degrades
    // to the best feasible one; otherwise redistribution can halt
    // half-done, leaving some shares raised and others still below
    // every floor. Callers may rely on every share reaching
    // min(min_share, total / numThreads).
    int floor_share = std::min(min_share, total() / numThreads);
    for (int i = 0; i < numThreads; ++i) {
        while (share[i] < floor_share) {
            // Take one unit from the currently largest share.
            int richest = 0;
            for (int j = 1; j < numThreads; ++j)
                if (share[j] > share[richest])
                    richest = j;
            if (share[richest] <= floor_share)
                return; // unreachable once the floor is feasible
            ++share[i];
            --share[richest];
        }
    }
}

std::string
Partition::str() const
{
    std::ostringstream os;
    for (int i = 0; i < numThreads; ++i) {
        if (i)
            os << '/';
        os << share[i];
    }
    return os.str();
}

DerivedLimits
deriveLimits(const Partition &partition, const SmtConfig &config)
{
    DerivedLimits lim;
    int total = config.intRegs;
    for (int i = 0; i < partition.numThreads; ++i) {
        int regs = std::clamp(partition.share[i], 0, total);
        lim.intRegs[i] = std::max(1, regs);
        lim.intIq[i] = std::max(
            1, static_cast<int>(static_cast<std::int64_t>(config.intIqSize) *
                                regs / total));
        lim.rob[i] = std::max(
            1, static_cast<int>(static_cast<std::int64_t>(config.robSize) *
                                regs / total));
    }
    return lim;
}

namespace
{

int
sumOf(const std::array<int, kMaxThreads> &a)
{
    return std::accumulate(a.begin(), a.end(), 0);
}

} // namespace

int Occupancy::totalIntIq() const { return sumOf(intIq); }
int Occupancy::totalFpIq() const { return sumOf(fpIq); }
int Occupancy::totalIntRegs() const { return sumOf(intRegs); }
int Occupancy::totalFpRegs() const { return sumOf(fpRegs); }
int Occupancy::totalRob() const { return sumOf(rob); }
int Occupancy::totalLsq() const { return sumOf(lsq); }
int Occupancy::totalIfq() const { return sumOf(ifq); }

OccupancyTotals
OccupancyTotals::of(const Occupancy &occ)
{
    OccupancyTotals t;
    t.intIq = occ.totalIntIq();
    t.fpIq = occ.totalFpIq();
    t.intRegs = occ.totalIntRegs();
    t.fpRegs = occ.totalFpRegs();
    t.rob = occ.totalRob();
    t.lsq = occ.totalLsq();
    t.ifq = occ.totalIfq();
    return t;
}

} // namespace smthill
