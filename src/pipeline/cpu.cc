#include "pipeline/cpu.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/profile.hh"

namespace smthill
{

namespace
{

/** Functional-unit pool indices for issue-stage accounting. */
enum FuPool : int
{
    FuIntAdd = 0,
    FuIntMul,
    FuMemPort,
    FuFpAdd,
    FuFpMul,
    FuPoolCount
};

int
fuPoolOf(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        return FuIntAdd;
      case OpClass::IntMul:
        return FuIntMul;
      case OpClass::Load:
      case OpClass::Store:
        return FuMemPort;
      case OpClass::FpAlu:
        return FuFpAdd;
      case OpClass::FpMul:
        return FuFpMul;
    }
    return FuIntAdd;
}

/** @return true if the op allocates an integer rename register. */
bool
writesIntReg(OpClass op)
{
    return op == OpClass::IntAlu || op == OpClass::IntMul ||
           op == OpClass::Load;
}

/** @return true if the op allocates a floating-point rename reg. */
bool
writesFpReg(OpClass op)
{
    return op == OpClass::FpAlu || op == OpClass::FpMul;
}

/** @return true if the op dispatches into the integer issue queue. */
bool
usesIntIq(OpClass op)
{
    return !isFpOp(op);
}

std::uint64_t
nextPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

std::uint64_t
CpuStats::committedTotal() const
{
    std::uint64_t sum = 0;
    for (auto v : committed)
        sum += v;
    return sum;
}

SmtCpu::SmtCpu(const SmtConfig &config, std::vector<StreamGenerator> programs)
    : cfg(config),
      mem(config.mem),
      btb(config.btbEntries, config.btbWays)
{
    cfg.validate();
    if (static_cast<int>(programs.size()) != cfg.numThreads)
        fatal(msg("SmtCpu: expected ", cfg.numThreads,
                  " programs, got ", programs.size()));

    std::uint64_t ring_size = nextPow2(
        static_cast<std::uint64_t>(cfg.robSize) + cfg.ifqSize +
        cfg.fetchWidth + 8);
    ringMask = ring_size - 1;

    threads.reserve(programs.size());
    for (auto &prog : programs) {
        ThreadState t(std::move(prog));
        t.ring.resize(ring_size);
        threads.push_back(std::move(t));
    }
    predictors.reserve(cfg.numThreads);
    for (int i = 0; i < cfg.numThreads; ++i)
        predictors.emplace_back(cfg.metaEntries, cfg.gshareEntries,
                                cfg.bimodalEntries);

    curPartition = Partition::equal(cfg.numThreads, cfg.intRegs);
    limits = deriveLimits(curPartition, cfg);
}

void
SmtCpu::restoreFrom(const SmtCpu &checkpoint)
{
    // Plain member-wise assignment is the whole restore: vector
    // assignment writes into existing storage when capacity suffices,
    // so a warm machine of the same shape takes zero allocations.
    // EventTraceRef's assignment drops the trace link by design.
    *this = checkpoint;
    tracer = nullptr;
    branchObserver = nullptr;
    branchObserverCtx = nullptr;
    loadObserver = nullptr;
    loadObserverCtx = nullptr;
}

void
SmtCpu::setPartition(const Partition &partition)
{
    if (partition.numThreads != cfg.numThreads)
        fatal("setPartition: thread-count mismatch");
    for (int i = 0; i < partition.numThreads; ++i) {
        if (partition.share[i] < 0)
            fatal(msg("setPartition: thread ", i, " share ",
                      partition.share[i], " is negative (",
                      partition.str(), ")"));
    }
    if (partition.total() > cfg.intRegs)
        fatal(msg("setPartition: shares sum to ", partition.total(),
                  " > ", cfg.intRegs, " registers"));
    curPartition = partition;
    limits = deriveLimits(partition, cfg);
    partitionOn = true;
    if (evtRef.trace) {
        // One counter track per hardware thread: the share timeline
        // renders as stacked counters in Perfetto.
        for (int i = 0; i < partition.numThreads; ++i) {
            evtRef.trace->counter(curCycle, evtRef.pid, i,
                                  "share.t" + std::to_string(i),
                                  partition.share[i]);
        }
    }
}

void
SmtCpu::clearPartition()
{
    partitionOn = false;
    if (evtRef.trace) {
        evtRef.trace->instant(curCycle, evtRef.pid, kControlTid,
                              "machine", "partition.clear");
    }
}

void
SmtCpu::setFetchLocked(ThreadId tid, bool locked)
{
    threads.at(tid).policyLocked = locked;
}

bool
SmtCpu::fetchLocked(ThreadId tid) const
{
    return threads.at(tid).policyLocked;
}

void
SmtCpu::setThreadEnabled(ThreadId tid, bool enabled)
{
    threads.at(tid).enabled = enabled;
    if (evtRef.trace) {
        Json args = Json::object();
        args.set("enabled", enabled);
        evtRef.trace->instant(curCycle, evtRef.pid,
                              static_cast<int>(tid), "machine",
                              "thread.enabled", std::move(args));
    }
}

bool
SmtCpu::threadEnabled(ThreadId tid) const
{
    return threads.at(tid).enabled;
}

void
SmtCpu::stallUntil(Cycle until)
{
    stalledUntil = std::max(stalledUntil, until);
    if (evtRef.trace && until > curCycle) {
        evtRef.trace->complete(curCycle,
                               static_cast<std::int64_t>(until - curCycle),
                               evtRef.pid, kControlTid, "machine",
                               "stall");
    }
}

void
SmtCpu::setBranchObserver(BranchObserver fn, void *ctx)
{
    branchObserver = fn;
    branchObserverCtx = ctx;
}

void
SmtCpu::setLoadObserver(LoadObserver fn, void *ctx)
{
    loadObserver = fn;
    loadObserverCtx = ctx;
}

int
SmtCpu::frontEndCount(ThreadId tid) const
{
    return occ.ifq[tid] + occ.intIq[tid] + occ.fpIq[tid];
}

void
SmtCpu::step()
{
    if (curCycle < stalledUntil) {
        // The machine is frozen (hill-climbing software cost), but
        // operations already in flight keep draining.
        ++statCounters.stalledCycles;
        doCompletions();
        ++curCycle;
        return;
    }
    doCommit();
    doCompletions();
    doIssue();
    doDispatch();
    doFetch();
    ++curCycle;
}

void
SmtCpu::run(Cycle n)
{
    // One span per batch, never per cycle: step() stays scope-free so
    // the profiler costs nothing measurable on the core loop.
    SMTHILL_PROF_SCOPE("cpu.run");
    for (Cycle i = 0; i < n; ++i)
        step();
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
SmtCpu::doCommit()
{
    int budget = cfg.commitWidth;
    int nt = cfg.numThreads;
    std::uint32_t next_tid = rrCommit;
    for (int i = 0; i < nt && budget > 0; ++i) {
        ThreadId tid = static_cast<ThreadId>(next_tid);
        if (++next_tid == static_cast<std::uint32_t>(nt))
            next_tid = 0;
        ThreadState &t = threads[tid];
        while (budget > 0 && t.commitSeq < t.dispatchSeq) {
            Slot &s = slotOf(t, t.commitSeq);
            if (s.state != SlotCompleted)
                break;
            if (s.si.isStore()) {
                // Stores drain from the store buffer at commit; the
                // access updates tags so future loads see the line.
                mem.dataAccess(tid, s.si.effAddr, true);
            }
            if (s.si.isBranch() && branchObserver) {
                const auto &blocks = t.gen.profile().blocks;
                CommittedBranch cb{tid, s.si.blockId,
                                   blocks[s.si.blockId].length};
                branchObserver(branchObserverCtx, cb);
            }
            trace(TraceStage::Commit, tid, s);
            releaseResources(tid, s);
            s.state = SlotFree;
            ++statCounters.committed[tid];
            ++t.commitSeq;
            --budget;
        }
    }
    rrCommit = (rrCommit + 1) % nt;
}

void
SmtCpu::releaseResources(ThreadId tid, Slot &slot)
{
    if (slot.holdsIntIq) {
        --occ.intIq[tid];
        --occT.intIq;
        slot.holdsIntIq = false;
    }
    if (slot.holdsFpIq) {
        --occ.fpIq[tid];
        --occT.fpIq;
        slot.holdsFpIq = false;
    }
    if (slot.holdsIntReg) {
        --occ.intRegs[tid];
        --occT.intRegs;
        slot.holdsIntReg = false;
    }
    if (slot.holdsFpReg) {
        --occ.fpRegs[tid];
        --occT.fpRegs;
        slot.holdsFpReg = false;
    }
    if (slot.holdsLsq) {
        --occ.lsq[tid];
        --occT.lsq;
        slot.holdsLsq = false;
    }
    if (slot.holdsRob) {
        --occ.rob[tid];
        --occT.rob;
        slot.holdsRob = false;
    }
}

// --------------------------------------------------------------------
// Completion / wakeup
// --------------------------------------------------------------------

void
SmtCpu::doCompletions()
{
    while (!events.empty() && events.top().at <= curCycle) {
        CompletionEvent ev = events.top();
        events.pop();
        Slot &s = threads[ev.tid].ring[ev.slot];
        if (s.genId != ev.genId || s.state != SlotIssued)
            continue; // squashed incarnation
        complete(ev.tid, ev.slot);
    }
}

void
SmtCpu::complete(ThreadId tid, std::uint32_t slot_idx)
{
    ThreadState &t = threads[tid];
    Slot &s = t.ring[slot_idx];
    s.state = SlotCompleted;
    trace(TraceStage::Complete, tid, s);

    // Wake register-dependent instructions.
    for (const DepRef &dep : s.dependents) {
        Slot &d = t.ring[dep.slot];
        if (d.genId != dep.genId || d.state != SlotDispatched)
            continue;
        if (d.pendingSrcs == 0)
            continue;
        if (--d.pendingSrcs == 0) {
            // Completions run before issue within a cycle, so a
            // dependent can issue back-to-back with its producer.
            // readyList capacity is retained across cycles, so growth
            // stops once the window's high-water mark is reached.
            readyList.push_back(ReadyEntry{curCycle, d.fetchCycle, tid, // smthill-lint: allow(hot-path-allocation)
                                           dep.slot, d.genId});
            readySorted = false;
        }
    }
    s.dependents.clear();

    if (s.si.isLoad()) {
        // Retire the outstanding-miss record, if any.
        bool missed = false;
        bool to_memory = false;
        auto &misses = t.misses;
        for (std::size_t i = 0; i < misses.size(); ++i) {
            if (misses[i].seq == s.seq) {
                missed = true;
                to_memory = misses[i].toMemory;
                misses.erase(misses.begin() + static_cast<long>(i));
                break;
            }
        }
        if (loadObserver) {
            loadObserver(loadObserverCtx,
                         LoadEvent{tid, s.seq, s.si.pc, true, missed,
                                   to_memory});
        }
    }

    if (s.si.isBranch()) {
        predictors[tid].update(s.si.pc, s.bp, s.si.taken);
        if (s.si.taken)
            btb.update(s.si.pc, s.si.target);
        if (s.mispredicted) {
            predictors[tid].repairHistory(s.bp, s.si.taken);
            if (t.blockingBranch == s.seq) {
                t.blockingBranch = kNoSeq;
                t.fetchReadyAt = std::max(
                    t.fetchReadyAt, curCycle + cfg.mispredictRedirect);
            }
        }
    }
}

// --------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------

void
SmtCpu::doIssue()
{
    if (readyList.empty())
        return;

    // Oldest-first issue across all threads. (age, tid, slot) is a
    // strict total order, so re-sorting an already-sorted list cannot
    // change it — skip the sort unless a wakeup appended entries.
    if (!readySorted) {
        std::sort(readyList.begin(), readyList.end(),
                  [](const ReadyEntry &a, const ReadyEntry &b) {
                      if (a.age != b.age)
                          return a.age < b.age;
                      if (a.tid != b.tid)
                          return a.tid < b.tid;
                      return a.slot < b.slot;
                  });
        readySorted = true;
    }

    int fu[FuPoolCount] = {cfg.intAddUnits, cfg.intMulUnits, cfg.memPorts,
                           cfg.fpAddUnits, cfg.fpMulUnits};
    int budget = cfg.issueWidth;

    std::vector<ReadyEntry> &remaining = issueScratch;
    remaining.clear();
    // The scratch keeps its capacity across cycles; this reserve is a
    // no-op in steady state and the push_backs below never reallocate.
    remaining.reserve(readyList.size()); // smthill-lint: allow(hot-path-allocation)

    for (const ReadyEntry &e : readyList) {
        Slot &s = threads[e.tid].ring[e.slot];
        if (s.genId != e.genId || s.state != SlotDispatched)
            continue; // squashed or already handled
        if (e.readyAt > curCycle || budget == 0) {
            remaining.push_back(e); // smthill-lint: allow(hot-path-allocation)
            continue;
        }
        int pool = fuPoolOf(s.si.op);
        if (fu[pool] == 0) {
            remaining.push_back(e); // smthill-lint: allow(hot-path-allocation)
            continue;
        }
        --fu[pool];
        --budget;

        // Leave the issue queue.
        ThreadId tid = e.tid;
        if (s.holdsIntIq) {
            --occ.intIq[tid];
            --occT.intIq;
            s.holdsIntIq = false;
        }
        if (s.holdsFpIq) {
            --occ.fpIq[tid];
            --occT.fpIq;
            s.holdsFpIq = false;
        }

        Cycle lat = 1;
        switch (s.si.op) {
          case OpClass::IntAlu:
            lat = cfg.intAluLatency;
            break;
          case OpClass::Branch:
            lat = cfg.branchLatency;
            break;
          case OpClass::IntMul:
            lat = cfg.intMulLatency;
            break;
          case OpClass::FpAlu:
            lat = cfg.fpAluLatency;
            break;
          case OpClass::FpMul:
            lat = cfg.fpMulLatency;
            break;
          case OpClass::Store:
            lat = cfg.storeLatency;
            break;
          case OpClass::Load: {
            MemAccessResult res =
                mem.dataAccess(tid, s.si.effAddr, false);
            lat = res.latency;
            ++statCounters.loads[tid];
            if (res.level != MemLevel::L1) {
                // Outstanding-miss list is bounded by in-flight loads
                // and keeps its capacity once warmed up.
                threads[tid].misses.push_back(OutstandingMiss{ // smthill-lint: allow(hot-path-allocation)
                    s.seq, curCycle, curCycle + lat,
                    res.level == MemLevel::Memory});
            }
            break;
          }
        }

        s.state = SlotIssued;
        trace(TraceStage::Issue, tid, s);
        s.completeCycle = curCycle + std::max<Cycle>(1, lat);
        // The completion heap is bounded by issued-but-uncompleted
        // instructions; its backing storage stabilizes after warm-up.
        events.push(CompletionEvent{s.completeCycle, tid, e.slot, s.genId}); // smthill-lint: allow(hot-path-allocation)
    }
    readyList.swap(remaining);
    // Keep the scratch (old readyList storage) empty so machine
    // checkpoints don't copy stale entries; capacity is retained.
    issueScratch.clear();
}

// --------------------------------------------------------------------
// Dispatch (rename)
// --------------------------------------------------------------------

void
SmtCpu::doDispatch()
{
    int nt = cfg.numThreads;
    // When the shared ROB is full no thread can dispatch anything —
    // skip the per-thread attempts entirely (commit drains it first
    // within the cycle, so this still fires on truly full cycles).
    if (occT.rob < cfg.robSize) {
        int budget = cfg.issueWidth;
        std::uint32_t next_tid = rrDispatch;
        for (int i = 0; i < nt && budget > 0; ++i) {
            ThreadId tid = static_cast<ThreadId>(next_tid);
            if (++next_tid == static_cast<std::uint32_t>(nt))
                next_tid = 0;
            ThreadState &t = threads[tid];
            while (budget > 0 && t.dispatchSeq < t.fetchSeq) {
                if (!dispatchOne(tid))
                    break;
                --budget;
            }
        }
    }
    rrDispatch = (rrDispatch + 1) % nt;
}

bool
SmtCpu::dispatchOne(ThreadId tid)
{
    ThreadState &t = threads[tid];
    InstSeq seq = t.dispatchSeq;
    Slot &s = slotOf(t, seq);
    const OpClass op = s.si.op;

    // Shared-capacity checks, against the running totals.
    if (occT.rob >= cfg.robSize)
        return false;
    bool int_iq = usesIntIq(op);
    if (int_iq && occT.intIq >= cfg.intIqSize)
        return false;
    if (!int_iq && occT.fpIq >= cfg.fpIqSize)
        return false;
    bool int_reg = writesIntReg(op);
    bool fp_reg = writesFpReg(op);
    if (int_reg && occT.intRegs >= cfg.intRegs)
        return false;
    if (fp_reg && occT.fpRegs >= cfg.fpRegs)
        return false;
    if (isMemOp(op) && occT.lsq >= cfg.lsqSize)
        return false;

    // Partition-limit checks (Section 3.2: a thread may not consume
    // beyond its allotment in any partitioned resource).
    if (partitionOn) {
        if (occ.rob[tid] >= limits.rob[tid])
            return false;
        if (int_iq && occ.intIq[tid] >= limits.intIq[tid])
            return false;
        if (int_reg && occ.intRegs[tid] >= limits.intRegs[tid])
            return false;
    }

    // Allocate.
    occ.ifq[tid] -= 1;
    --occT.ifq;
    s.holdsRob = true;
    ++occ.rob[tid];
    ++occT.rob;
    if (int_iq) {
        s.holdsIntIq = true;
        ++occ.intIq[tid];
        ++occT.intIq;
    } else {
        s.holdsFpIq = true;
        ++occ.fpIq[tid];
        ++occT.fpIq;
    }
    if (int_reg) {
        s.holdsIntReg = true;
        ++occ.intRegs[tid];
        ++occT.intRegs;
    }
    if (fp_reg) {
        s.holdsFpReg = true;
        ++occ.fpRegs[tid];
        ++occT.fpRegs;
    }
    if (isMemOp(op)) {
        s.holdsLsq = true;
        ++occ.lsq[tid];
        ++occT.lsq;
    }

    s.state = SlotDispatched;
    trace(TraceStage::Dispatch, tid, s);
    linkDependences(tid, seq, s);
    ++t.dispatchSeq;
    if (loadObserver && op == OpClass::Load) {
        loadObserver(loadObserverCtx,
                     LoadEvent{tid, seq, s.si.pc, false, false, false});
    }
    return true;
}

void
SmtCpu::linkDependences(ThreadId tid, InstSeq seq, Slot &slot)
{
    ThreadState &t = threads[tid];
    int pending = 0;
    std::uint32_t my_idx = slotIndex(seq);
    for (int k = 0; k < 2; ++k) {
        std::int32_t dist = slot.si.srcDist[k];
        if (dist <= 0)
            continue;
        if (static_cast<InstSeq>(dist) > seq)
            continue; // produced before the program began
        InstSeq prod = seq - static_cast<InstSeq>(dist);
        if (prod < t.commitSeq)
            continue; // producer already committed
        Slot &p = slotOf(t, prod);
        if (p.state == SlotCompleted || p.state == SlotFree)
            continue;
        // Dependent lists live in ring slots that are recycled, so
        // their capacity amortizes to zero growth per dispatch.
        p.dependents.push_back(DepRef{my_idx, slot.genId}); // smthill-lint: allow(hot-path-allocation)
        ++pending;
    }
    slot.pendingSrcs = static_cast<std::uint8_t>(pending);
    if (pending == 0) {
        // Same retained-capacity story as the completion-side push.
        readyList.push_back( // smthill-lint: allow(hot-path-allocation)
            ReadyEntry{curCycle + 1, slot.fetchCycle, tid, my_idx,
                       slot.genId});
        readySorted = false;
    }
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
SmtCpu::fetchOrder(std::array<ThreadId, kMaxThreads> &order) const
{
    int nt = cfg.numThreads;
    for (int i = 0; i < nt; ++i)
        order[i] = static_cast<ThreadId>(i);
    // Insertion sort by ascending front-end instruction count
    // (ICOUNT); stable so ties break by thread id.
    for (int i = 1; i < nt; ++i) {
        ThreadId v = order[i];
        int key = frontEndCount(v);
        int j = i - 1;
        while (j >= 0 && frontEndCount(order[j]) > key) {
            order[j + 1] = order[j];
            --j;
        }
        order[j + 1] = v;
    }
}

bool
SmtCpu::canFetch(const ThreadState &t, ThreadId) const
{
    return t.enabled && !t.policyLocked && t.blockingBranch == kNoSeq &&
           t.fetchReadyAt <= curCycle;
}

bool
SmtCpu::partitionBlocked(ThreadId tid) const
{
    if (!partitionOn)
        return false;
    return occ.intRegs[tid] >= limits.intRegs[tid] ||
           occ.intIq[tid] >= limits.intIq[tid] ||
           occ.rob[tid] >= limits.rob[tid];
}

void
SmtCpu::ensureGenerated(ThreadState &t, InstSeq seq)
{
    while (t.genSeq <= seq) {
        if (t.genSeq - t.commitSeq > ringMask)
            panic("instruction ring overflow");
        Slot &s = slotOf(t, t.genSeq);
        s.si = t.gen.next();
        s.seq = t.genSeq;
        s.state = SlotFree;
        ++t.genSeq;
    }
}

void
SmtCpu::doFetch()
{
    std::array<ThreadId, kMaxThreads> order;
    fetchOrder(order);

    int fetched = 0;
    int threads_used = 0;
    int nt = cfg.numThreads;

    for (int oi = 0; oi < nt; ++oi) {
        if (threads_used >= cfg.fetchThreadsPerCycle ||
            fetched >= cfg.fetchWidth)
            break;
        ThreadId tid = order[oi];
        ThreadState &t = threads[tid];
        if (!canFetch(t, tid))
            continue;
        if (partitionBlocked(tid)) {
            ++statCounters.partitionLockCycles[tid];
            continue;
        }
        if (occT.ifq >= cfg.ifqSize)
            break;

        // One I-cache access per fetch group.
        ensureGenerated(t, t.fetchSeq);
        Addr group_pc = slotOf(t, t.fetchSeq).si.pc;
        MemAccessResult il1 = mem.instAccess(tid, group_pc);
        if (il1.level != MemLevel::L1) {
            t.fetchReadyAt = curCycle + il1.latency;
            continue;
        }
        ++threads_used;

        while (fetched < cfg.fetchWidth) {
            if (occT.ifq >= cfg.ifqSize)
                break;
            if (partitionBlocked(tid))
                break;
            ensureGenerated(t, t.fetchSeq);
            Slot &s = slotOf(t, t.fetchSeq);
            InstSeq seq = t.fetchSeq;

            s.fetchCycle = curCycle;
            s.state = SlotFetched;
            s.dependents.clear();
            s.pendingSrcs = 0;
            s.mispredicted = false;

            ++occ.ifq[tid];
            ++occT.ifq;
            ++statCounters.fetched[tid];
            trace(TraceStage::Fetch, tid, s);
            ++t.fetchSeq;
            ++fetched;

            if (!s.si.isBranch())
                continue;

            ++statCounters.branches[tid];
            s.bp = predictors[tid].predict(s.si.pc);
            Addr btb_target = 0;
            bool btb_hit = btb.lookup(s.si.pc, btb_target);
            bool target_ok = btb_hit && btb_target == s.si.target;
            bool correct = (s.bp.prediction == s.si.taken) &&
                           (!s.si.taken || target_ok);
            if (!correct) {
                // Wrong-path fetch is not modeled: the thread stops
                // fetching until the branch resolves and the
                // front end refills (cfg.mispredictRedirect).
                s.mispredicted = true;
                ++statCounters.mispredicts[tid];
                t.blockingBranch = seq;
                break;
            }
            if (s.si.taken)
                break; // fetch group ends at a taken branch
        }
    }
}

// --------------------------------------------------------------------
// Squash (FLUSH policy support)
// --------------------------------------------------------------------

int
SmtCpu::squashFrom(ThreadId tid, InstSeq start)
{
    ThreadState &t = threads.at(tid);
    int squashed = 0;
    for (InstSeq i = start; i < t.fetchSeq; ++i) {
        Slot &s = slotOf(t, i);
        if (s.state == SlotFree)
            continue;
        if (s.state == SlotFetched) {
            --occ.ifq[tid];
            --occT.ifq;
        }
        trace(TraceStage::Squash, tid, s);
        releaseResources(tid, s);
        s.state = SlotFree;
        ++s.genId;
        s.dependents.clear();
        ++squashed;
        // Every squash counts as flushed, whatever triggered it —
        // the fetched == committed + flushed + in-flight identity
        // must survive context resets and parks, not just policy
        // flushes.
        ++statCounters.flushed[tid];
    }

    t.fetchSeq = start;
    t.dispatchSeq = std::min(t.dispatchSeq, start);
    if (t.blockingBranch != kNoSeq && t.blockingBranch >= start)
        t.blockingBranch = kNoSeq;
    std::erase_if(t.misses, [start](const OutstandingMiss &m) {
        return m.seq >= start;
    });
    return squashed;
}

int
SmtCpu::flushThreadAfter(ThreadId tid, InstSeq seq)
{
    ThreadState &t = threads.at(tid);
    InstSeq start = std::max(seq + 1, t.commitSeq);
    if (start >= t.fetchSeq)
        return 0;

    int squashed = squashFrom(tid, start);
    if (evtRef.trace && squashed > 0) {
        Json args = Json::object();
        args.set("after_seq", seq);
        args.set("squashed", squashed);
        evtRef.trace->instant(curCycle, evtRef.pid,
                              static_cast<int>(tid), "machine", "flush",
                              std::move(args));
    }
    return squashed;
}

int
SmtCpu::idleContext(ThreadId tid)
{
    ThreadState &t = threads.at(tid);
    int squashed = squashFrom(tid, t.commitSeq);
    t.genSeq = t.commitSeq;
    t.blockingBranch = kNoSeq;
    t.policyLocked = false;
    t.enabled = false;
    t.misses.clear();
    if (evtRef.trace) {
        Json args = Json::object();
        args.set("squashed", squashed);
        evtRef.trace->instant(curCycle, evtRef.pid,
                              static_cast<int>(tid), "machine",
                              "context.idle", std::move(args));
    }
    return squashed;
}

int
SmtCpu::resetContext(ThreadId tid, StreamGenerator gen)
{
    ThreadState &t = threads.at(tid);
    int squashed = squashFrom(tid, t.commitSeq);
    t.gen = std::move(gen);
    // Pull the generation cursor back so the first fetch after the
    // reset synthesizes from the new stream; slots pre-generated from
    // the old occupant's generator are overwritten before use.
    t.genSeq = t.commitSeq;
    t.fetchReadyAt = curCycle;
    t.blockingBranch = kNoSeq;
    t.policyLocked = false;
    t.enabled = true;
    t.misses.clear();
    predictors[tid] = HybridPredictor(cfg.metaEntries, cfg.gshareEntries,
                                      cfg.bimodalEntries);
    if (evtRef.trace) {
        Json args = Json::object();
        args.set("squashed", squashed);
        evtRef.trace->instant(curCycle, evtRef.pid,
                              static_cast<int>(tid), "machine",
                              "context.reset", std::move(args));
    }
    return squashed;
}

} // namespace smthill
