#include "validate/invariants.hh"

#include <cmath>
#include <map>
#include <utility>

#include "common/log.hh"

namespace smthill
{

InvariantChecker::InvariantChecker() = default;

InvariantChecker::InvariantChecker(Options options) : opt(options) {}

void
InvariantChecker::report(const char *check, std::string detail)
{
    if (opt.failFast)
        panic(msg("invariant violated [", check, "]: ", detail));
    ++total_;
    if (viols.size() < opt.maxViolations)
        viols.push_back(InvariantViolation{check, std::move(detail)});
}

void
InvariantChecker::clear()
{
    viols.clear();
    total_ = 0;
}

std::string
InvariantChecker::summary() const
{
    std::string out;
    for (const InvariantViolation &v : viols) {
        out += "[";
        out += v.check;
        out += "] ";
        out += v.detail;
        out += "\n";
    }
    if (total_ > viols.size()) {
        out += msg("... and ", total_ - viols.size(),
                   " more violations\n");
    }
    return out;
}

void
InvariantChecker::checkPartitionShape(const Partition &p, int num_threads,
                                      int total, int min_share)
{
    if (p.numThreads != num_threads) {
        report("partition.threads",
               msg("partition has ", p.numThreads, " threads, machine ",
                   num_threads));
        return;
    }
    for (int i = 0; i < p.numThreads; ++i) {
        if (p.share[i] < 0) {
            report("partition.negative",
                   msg("thread ", i, " share ", p.share[i], " < 0 (",
                       p.str(), ")"));
        }
    }
    int sum = p.total();
    if (sum > total || (opt.strictPartitionTotal && sum != total)) {
        report("partition.total",
               msg("shares sum to ", sum, ", machine total ", total,
                   " (", p.str(), ")"));
    }
    // A floor only binds when it is feasible at all.
    if (min_share > 0 && num_threads > 0 &&
        min_share * num_threads <= total) {
        for (int i = 0; i < p.numThreads; ++i) {
            if (p.share[i] < min_share) {
                report("partition.min_share",
                       msg("thread ", i, " share ", p.share[i],
                           " below floor ", min_share, " (", p.str(),
                           ")"));
            }
        }
    }
}

void
InvariantChecker::checkPartitionConserves(const Partition &before,
                                          const Partition &after)
{
    if (before.numThreads != after.numThreads) {
        report("partition.move_threads",
               msg("move changed thread count ", before.numThreads,
                   " -> ", after.numThreads));
        return;
    }
    if (before.total() != after.total()) {
        report("partition.conservation",
               msg("move changed total ", before.total(), " -> ",
                   after.total(), " (", before.str(), " -> ",
                   after.str(), ")"));
    }
}

void
InvariantChecker::checkOccupancyCapacity(const Occupancy &occ,
                                         const SmtConfig &config)
{
    struct Cap
    {
        const char *name;
        int used;
        int cap;
    };
    const Cap caps[] = {
        {"int_iq", occ.totalIntIq(), config.intIqSize},
        {"fp_iq", occ.totalFpIq(), config.fpIqSize},
        {"int_regs", occ.totalIntRegs(), config.intRegs},
        {"fp_regs", occ.totalFpRegs(), config.fpRegs},
        {"rob", occ.totalRob(), config.robSize},
        {"lsq", occ.totalLsq(), config.lsqSize},
        {"ifq", occ.totalIfq(), config.ifqSize},
    };
    for (const Cap &c : caps) {
        if (c.used > c.cap) {
            report("occupancy.capacity",
                   msg(c.name, " occupancy ", c.used, " exceeds capacity ",
                       c.cap));
        }
        if (c.used < 0) {
            report("occupancy.negative",
                   msg(c.name, " occupancy ", c.used, " is negative"));
        }
    }
    for (int i = 0; i < kMaxThreads; ++i) {
        if (occ.intIq[i] < 0 || occ.fpIq[i] < 0 || occ.intRegs[i] < 0 ||
            occ.fpRegs[i] < 0 || occ.rob[i] < 0 || occ.lsq[i] < 0 ||
            occ.ifq[i] < 0) {
            report("occupancy.negative",
                   msg("thread ", i, " has a negative occupancy counter"));
        }
    }
}

void
InvariantChecker::checkOccupancyTotals(const Occupancy &occ,
                                       const OccupancyTotals &totals)
{
    const OccupancyTotals fresh = OccupancyTotals::of(occ);
    struct Pair
    {
        const char *name;
        int cached;
        int summed;
    };
    const Pair pairs[] = {
        {"int_iq", totals.intIq, fresh.intIq},
        {"fp_iq", totals.fpIq, fresh.fpIq},
        {"int_regs", totals.intRegs, fresh.intRegs},
        {"fp_regs", totals.fpRegs, fresh.fpRegs},
        {"rob", totals.rob, fresh.rob},
        {"lsq", totals.lsq, fresh.lsq},
        {"ifq", totals.ifq, fresh.ifq},
    };
    for (const Pair &p : pairs) {
        if (p.cached != p.summed) {
            report("occupancy.totals",
                   msg(p.name, " running total ", p.cached,
                       " != per-thread sum ", p.summed));
        }
    }
}

void
InvariantChecker::checkOccupancyLimits(const Occupancy &occ,
                                       const DerivedLimits &limits,
                                       int num_threads)
{
    for (int i = 0; i < num_threads; ++i) {
        if (occ.intRegs[i] > limits.intRegs[i]) {
            report("occupancy.int_regs_limit",
                   msg("thread ", i, " holds ", occ.intRegs[i],
                       " int regs, cap ", limits.intRegs[i]));
        }
        if (occ.intIq[i] > limits.intIq[i]) {
            report("occupancy.int_iq_limit",
                   msg("thread ", i, " holds ", occ.intIq[i],
                       " int IQ entries, cap ", limits.intIq[i]));
        }
        if (occ.rob[i] > limits.rob[i]) {
            report("occupancy.rob_limit",
                   msg("thread ", i, " holds ", occ.rob[i],
                       " ROB entries, cap ", limits.rob[i]));
        }
    }
}

void
InvariantChecker::checkOccupancyTransient(const Occupancy &occ,
                                          const Occupancy &prev,
                                          const DerivedLimits &limits,
                                          int num_threads)
{
    // Right after a partition shrink a thread may sit above its new
    // cap; dispatch is gated on the cap, so occupancy above it can
    // only drain. The sound per-structure rule between two checks is
    // therefore occ <= max(prev, limit).
    auto check = [&](const char *name, int cur, int before, int lim,
                     int tid) {
        if (cur > lim && cur > before) {
            report("occupancy.partition_limit",
                   msg("thread ", tid, " ", name, " occupancy grew to ",
                       cur, " beyond cap ", lim, " (was ", before, ")"));
        }
    };
    for (int i = 0; i < num_threads; ++i) {
        check("int_regs", occ.intRegs[i], prev.intRegs[i],
              limits.intRegs[i], i);
        check("int_iq", occ.intIq[i], prev.intIq[i], limits.intIq[i], i);
        check("rob", occ.rob[i], prev.rob[i], limits.rob[i], i);
    }
}

void
InvariantChecker::checkFlowCounters(const CpuStats &stats,
                                    const SmtConfig &config)
{
    const std::uint64_t in_flight_cap =
        static_cast<std::uint64_t>(config.ifqSize) +
        static_cast<std::uint64_t>(config.robSize);
    for (int i = 0; i < config.numThreads; ++i) {
        std::uint64_t retired = stats.committed[i] + stats.flushed[i];
        if (stats.fetched[i] < retired) {
            report("flow.fetched",
                   msg("thread ", i, " fetched ", stats.fetched[i],
                       " < committed ", stats.committed[i], " + flushed ",
                       stats.flushed[i]));
            continue;
        }
        std::uint64_t in_flight = stats.fetched[i] - retired;
        if (in_flight > in_flight_cap) {
            report("flow.in_flight",
                   msg("thread ", i, " has ", in_flight,
                       " in-flight instructions, window holds ",
                       in_flight_cap));
        }
        if (stats.mispredicts[i] > stats.branches[i]) {
            report("flow.mispredicts",
                   msg("thread ", i, " mispredicts ", stats.mispredicts[i],
                       " > branches ", stats.branches[i]));
        }
        if (stats.branches[i] > stats.fetched[i]) {
            report("flow.branches",
                   msg("thread ", i, " branches ", stats.branches[i],
                       " > fetched ", stats.fetched[i]));
        }
        if (stats.loads[i] > stats.fetched[i]) {
            report("flow.loads",
                   msg("thread ", i, " loads ", stats.loads[i],
                       " > fetched ", stats.fetched[i]));
        }
    }
}

CacheCounterSample
CacheCounterSample::capture(const MemoryHierarchy &memory)
{
    CacheCounterSample s;
    for (int i = 0; i < kMaxThreads; ++i) {
        s.dl1PerThread[i] = memory.dl1Misses(static_cast<ThreadId>(i));
        s.l2PerThread[i] = memory.l2Misses(static_cast<ThreadId>(i));
    }
    s.il1Misses = memory.il1().misses();
    s.dl1Misses = memory.dl1().misses();
    s.ul2Hits = memory.ul2().hits();
    s.ul2Misses = memory.ul2().misses();
    return s;
}

void
InvariantChecker::checkCacheCounters(const CacheCounterSample &sample)
{
    // Sum the full attribution arrays: a miss credited to a thread id
    // beyond the machine's contexts is itself a bug worth catching.
    std::uint64_t dl1_sum = 0;
    std::uint64_t l2_sum = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
        dl1_sum += sample.dl1PerThread[i];
        l2_sum += sample.l2PerThread[i];
    }
    if (dl1_sum != sample.dl1Misses) {
        report("cache.dl1_attribution",
               msg("per-thread DL1 misses sum to ", dl1_sum,
                   ", cache counted ", sample.dl1Misses));
    }
    if (l2_sum != sample.ul2Misses) {
        report("cache.l2_attribution",
               msg("per-thread L2 misses sum to ", l2_sum,
                   ", cache counted ", sample.ul2Misses));
    }
    std::uint64_t l2_accesses = sample.ul2Hits + sample.ul2Misses;
    std::uint64_t l1_misses = sample.il1Misses + sample.dl1Misses;
    if (l2_accesses != l1_misses) {
        report("cache.level_reconcile",
               msg("L2 saw ", l2_accesses, " accesses but L1s missed ",
                   l1_misses, " times"));
    }
}

void
InvariantChecker::checkCacheCounters(const MemoryHierarchy &memory)
{
    checkCacheCounters(CacheCounterSample::capture(memory));
}

void
InvariantChecker::checkEpochTrace(const HillClimbing &hill,
                                  const EpochTracer &tracer)
{
    if (tracer.empty())
        return;
    const auto &recs = tracer.records();
    const EpochTraceRecord &last = recs.back();
    if (!(last.anchor == hill.anchor())) {
        report("trace.anchor",
               msg("last trace anchor ", last.anchor.str(),
                   " != live anchor ", hill.anchor().str()));
    }
    for (int i = 0; i < last.anchor.numThreads; ++i) {
        if (last.singleIpcEst[i] != hill.singleIpc()[i]) {
            report("trace.single_ipc",
                   msg("thread ", i, " traced SingleIPC estimate ",
                       last.singleIpcEst[i], " != live ",
                       hill.singleIpc()[i]));
        }
    }
    for (std::size_t r = 0; r < recs.size(); ++r) {
        const EpochTraceRecord &rec = recs[r];
        if (r > 0 && rec.epochId <= recs[r - 1].epochId) {
            report("trace.epoch_order",
                   msg("record ", r, " epoch id ", rec.epochId,
                       " does not follow ", recs[r - 1].epochId));
        }
        if (rec.elapsedCycles < 1) {
            report("trace.elapsed",
                   msg("record ", r, " covers ", rec.elapsedCycles,
                       " cycles"));
        }
        for (int i = 0; i < rec.numThreads; ++i) {
            if (!std::isfinite(rec.ipc[i]) || rec.ipc[i] < 0.0) {
                report("trace.ipc",
                       msg("record ", r, " thread ", i,
                           " has invalid IPC ", rec.ipc[i]));
            }
        }
    }
}

void
InvariantChecker::checkEventStream(const std::vector<SimEvent> &events)
{
    // Last end time seen per (pid, tid) track; points end at ts,
    // slices at ts + dur.
    std::map<std::pair<std::int32_t, std::int32_t>, Cycle> track_end;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const SimEvent &e = events[i];
        if (e.ph != 'B' && e.ph != 'E' && e.ph != 'X' && e.ph != 'i' &&
            e.ph != 'C' && e.ph != 'M') {
            report("events.phase",
                   msg("event ", i, " (", eventSummary(e),
                       ") has unknown phase '", e.ph, "'"));
            continue;
        }
        if (e.ph == 'M')
            continue; // metadata carries no timestamp semantics
        if (e.ph == 'X' && e.dur < 0) {
            report("events.duration",
                   msg("event ", i, " (", eventSummary(e),
                       ") is a slice with negative duration ", e.dur));
        }
        Cycle end = e.ts;
        if (e.ph == 'X' && e.dur > 0)
            end += static_cast<Cycle>(e.dur);
        auto [it, fresh] = track_end.try_emplace({e.pid, e.tid}, end);
        if (!fresh) {
            if (end < it->second) {
                report("events.monotonic",
                       msg("event ", i, " (", eventSummary(e),
                           ") ends at cycle ", end,
                           " before track (pid ", e.pid, ", tid ",
                           e.tid, ") already reached ", it->second));
            } else {
                it->second = end;
            }
        }
    }
}

void
InvariantChecker::checkCpu(const SmtCpu &cpu)
{
    checkOccupancyCapacity(cpu.occupancy(), cpu.config());
    checkOccupancyTotals(cpu.occupancy(), cpu.occupancyTotals());
    if (cpu.partitioningEnabled()) {
        checkPartitionShape(cpu.partition(), cpu.numThreads(),
                            cpu.config().intRegs);
    }
    checkFlowCounters(cpu.stats(), cpu.config());
    checkCacheCounters(cpu.memory());
}

} // namespace smthill
