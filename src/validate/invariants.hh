/**
 * @file
 * Runtime invariant checking for the simulator (debug-mode validation
 * layer). The paper's results depend on the machine conserving its
 * partitioned resources exactly — every trial/anchor move
 * redistributes the 256 integer rename registers and the proportional
 * IQ/ROB caps — so this layer cross-checks the live pipeline against
 * the accounting identities that must hold at every cycle:
 *
 *  - an enforced Partition has the machine's thread count,
 *    non-negative shares, and shares summing to the machine total;
 *  - per-thread occupancy never exceeds the DerivedLimits caps
 *    (allowing the bounded transient drain right after a partition
 *    shrink, when existing occupancy may sit above the new cap but
 *    must only decrease);
 *  - occupancy totals never exceed the shared structure capacities;
 *  - cumulative flow counters reconcile: fetched >= committed +
 *    flushed per thread, with the in-flight difference bounded by
 *    IFQ + ROB capacity;
 *  - cache access counters reconcile across levels (per-thread miss
 *    attributions sum to the per-cache totals; every L1 miss is
 *    exactly one L2 access);
 *  - epoch-trace records match the live learner state.
 *
 * Checks are expressed over plain state structs wherever possible so
 * the test suite can feed deliberately corrupted state and assert
 * each invariant actually fires (no silent checkers).
 */

#ifndef SMTHILL_VALIDATE_INVARIANTS_HH
#define SMTHILL_VALIDATE_INVARIANTS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/event_trace.hh"
#include "core/epoch_trace.hh"
#include "core/hill_climbing.hh"
#include "pipeline/cpu.hh"

namespace smthill
{

/**
 * Cache counters captured for reconciliation — a plain struct so the
 * tests can corrupt one and assert the checks fire.
 */
struct CacheCounterSample
{
    std::array<std::uint64_t, kMaxThreads> dl1PerThread{};
    std::array<std::uint64_t, kMaxThreads> l2PerThread{};
    std::uint64_t il1Misses = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t ul2Hits = 0;
    std::uint64_t ul2Misses = 0;

    static CacheCounterSample capture(const MemoryHierarchy &memory);
};

/** One detected invariant violation. */
struct InvariantViolation
{
    std::string check;  ///< invariant name ("partition.total", ...)
    std::string detail; ///< human-readable description of the breach
};

/**
 * Collects invariant violations over structured simulator state.
 * By default violations accumulate for inspection; failFast panics
 * on the first one (fuzzing under a debugger / sanitizer).
 */
class InvariantChecker
{
  public:
    struct Options
    {
        /** panic() on the first violation instead of recording it. */
        bool failFast = false;

        /**
         * Require an enforced partition to sum to exactly the
         * machine total (all in-repo partitioning policies conserve
         * it; user-supplied static partitions may deliberately
         * under-allocate, so this is an opt-in strictness).
         */
        bool strictPartitionTotal = false;

        /** Recording cap; violations past it only bump the count. */
        std::size_t maxViolations = 256;
    };

    InvariantChecker();
    explicit InvariantChecker(Options options);

    // --- Structured-state checks (feed corrupted state in tests) ---

    /**
     * Shape of a partition: thread count, non-negative shares, total
     * vs @p total (<= always; == when strictPartitionTotal), and,
     * when @p min_share > 0 and feasible, every share >= min_share.
     */
    void checkPartitionShape(const Partition &p, int num_threads,
                             int total, int min_share = 0);

    /** Two partitions (before/after a move) conserve the total. */
    void checkPartitionConserves(const Partition &before,
                                 const Partition &after);

    /** Occupancy totals fit the shared structure capacities. */
    void checkOccupancyCapacity(const Occupancy &occ,
                                const SmtConfig &config);

    /**
     * The incrementally maintained machine-wide totals equal a fresh
     * re-summation of the per-thread counters (the pipeline updates
     * both at every allocate/release site; a drifted total means a
     * missed update).
     */
    void checkOccupancyTotals(const Occupancy &occ,
                              const OccupancyTotals &totals);

    /**
     * Strict per-thread partition caps: occupancy of every
     * partitioned structure is within DerivedLimits. Use only on
     * state known to be past any re-partition transient.
     */
    void checkOccupancyLimits(const Occupancy &occ,
                              const DerivedLimits &limits,
                              int num_threads);

    /**
     * Transient-tolerant per-thread caps: occupancy may exceed the
     * cap only while draining, i.e. occ <= max(prev, limit) for each
     * partitioned structure (prev = occupancy at the last check).
     */
    void checkOccupancyTransient(const Occupancy &occ,
                                 const Occupancy &prev,
                                 const DerivedLimits &limits,
                                 int num_threads);

    /**
     * Cumulative pipeline flow identities over CpuStats: per thread,
     * fetched >= committed + flushed, the in-flight difference is
     * bounded by IFQ + ROB capacity, mispredicts <= branches, and
     * branches/loads <= fetched.
     */
    void checkFlowCounters(const CpuStats &stats, const SmtConfig &config);

    /**
     * Cache counter reconciliation: per-thread DL1/L2 miss
     * attributions sum to the cache totals, and L2 accesses equal
     * IL1 misses + DL1 misses (every L1 miss is one L2 access).
     */
    void checkCacheCounters(const CacheCounterSample &sample);

    /** Capture @p memory's counters and reconcile them. */
    void checkCacheCounters(const MemoryHierarchy &memory);

    /**
     * Epoch-trace records agree with the live learner: the last
     * record's anchor and SingleIPC estimates equal the learner's
     * current state, epoch ids increase strictly, and measured
     * windows/IPCs are sane.
     */
    void checkEpochTrace(const HillClimbing &hill,
                         const EpochTracer &tracer);

    /**
     * Cycle-level event-stream sanity (common/event_trace.hh): per
     * (pid, tid) track, event end times (ts + dur for slices, ts for
     * points) never decrease — sim time only moves forward — slice
     * durations are non-negative, and phase characters are from the
     * trace-event dialect the exporter emits (B/E/X/i/C/M).
     */
    void checkEventStream(const std::vector<SimEvent> &events);

    // --- Composite live-machine check -----------------------------

    /**
     * Run every stateless check against a live machine: occupancy
     * capacities, partition shape (when enforced), flow counters,
     * and cache reconciliation.
     */
    void checkCpu(const SmtCpu &cpu);

    // --- Results ---------------------------------------------------

    bool ok() const { return total_ == 0; }
    const std::vector<InvariantViolation> &violations() const
    {
        return viols;
    }
    /** Count of all violations, including ones past maxViolations. */
    std::size_t totalViolations() const { return total_; }
    void clear();

    /** One line per recorded violation (empty string when ok). */
    std::string summary() const;

    const Options &options() const { return opt; }

  private:
    void report(const char *check, std::string detail);

    Options opt;
    std::vector<InvariantViolation> viols;
    std::size_t total_ = 0;
};

} // namespace smthill

#endif // SMTHILL_VALIDATE_INVARIANTS_HH
