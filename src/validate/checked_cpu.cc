#include "validate/checked_cpu.hh"

namespace smthill
{

CheckedCpu::CheckedCpu(SmtCpu cpu, InvariantChecker::Options options,
                       Cycle check_interval)
    : machine(std::move(cpu)), chk(options), interval(check_interval)
{
    prevOcc = machine.occupancy();
}

void
CheckedCpu::checkNow()
{
    chk.checkCpu(machine);
    if (machine.partitioningEnabled()) {
        DerivedLimits limits =
            deriveLimits(machine.partition(), machine.config());
        chk.checkOccupancyTransient(machine.occupancy(), prevOcc, limits,
                                    machine.numThreads());
    }
    prevOcc = machine.occupancy();
}

void
CheckedCpu::step()
{
    machine.step();
    if (interval == 0)
        return;
    if (++sinceCheck >= interval) {
        sinceCheck = 0;
        checkNow();
    }
}

void
CheckedCpu::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

} // namespace smthill
