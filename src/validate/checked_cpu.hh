/**
 * @file
 * CheckedCpu: an SmtCpu driven through the invariant layer. Every
 * step (or every Nth step, for cheaper spot checking) the full set of
 * accounting identities is verified — occupancy capacities, partition
 * shape, transient-tolerant per-thread partition caps, flow-counter
 * identities, and cache reconciliation. Violations accumulate in the
 * embedded InvariantChecker (or panic immediately with failFast).
 *
 * The default check cadence follows the SMTHILL_VALIDATE build
 * option: every cycle when the validation layer is compiled in
 * (Debug builds default it ON), disabled otherwise — so release
 * benches built without the option pay nothing unless a cadence is
 * requested explicitly (as the fuzz harness does).
 */

#ifndef SMTHILL_VALIDATE_CHECKED_CPU_HH
#define SMTHILL_VALIDATE_CHECKED_CPU_HH

#include "validate/invariants.hh"

namespace smthill
{

/** An SmtCpu whose steps are cross-checked against the invariants. */
class CheckedCpu
{
  public:
    /** Cadence the build configuration asks for (0 = disabled). */
    static constexpr Cycle defaultInterval()
    {
#ifdef SMTHILL_VALIDATE
        return 1;
#else
        return 0;
#endif
    }

    /**
     * @param cpu the machine to drive (moved in)
     * @param options invariant-checker behavior
     * @param check_interval check every Nth step(); 0 disables the
     *        per-step checks (checkNow() still works)
     */
    explicit CheckedCpu(SmtCpu cpu,
                        InvariantChecker::Options options =
                            InvariantChecker::Options{},
                        Cycle check_interval = defaultInterval());

    /** Advance one cycle, then check at the configured cadence. */
    void step();

    /** Advance @p n cycles through step(). */
    void run(Cycle n);

    /** Force a full invariant sweep right now. */
    void checkNow();

    SmtCpu &cpu() { return machine; }
    const SmtCpu &cpu() const { return machine; }

    InvariantChecker &checker() { return chk; }
    const InvariantChecker &checker() const { return chk; }

    Cycle checkInterval() const { return interval; }
    void setCheckInterval(Cycle every) { interval = every; }

  private:
    SmtCpu machine;
    InvariantChecker chk;
    Cycle interval;
    Cycle sinceCheck = 0;
    Occupancy prevOcc; ///< occupancy at the previous check
};

} // namespace smthill

#endif // SMTHILL_VALIDATE_CHECKED_CPU_HH
