/**
 * @file
 * Seeded differential fuzz harness over the whole simulator stack.
 *
 * Each seed deterministically expands into a FuzzCase — a random
 * small machine configuration, workload, learner tuning, and policy
 * choice — which then runs through a fixed battery of property and
 * differential stages:
 *
 *  A. partition algebra: clampMin / trialPartition / moveAnchor /
 *     enumeratePartitions2 conserve totals, respect feasible floors,
 *     and enumerate exactly floor(total/stride) - 1 trials;
 *  B. phase machinery: PhaseTable ids stay bounded by its capacity
 *     under arbitrary signature streams, and the Markov predictor
 *     answers "don't know" (-1) before it has observed anything;
 *  C. an invariant-checked policy run: the chosen policy drives a
 *     CheckedCpu with per-cycle invariant sweeps, the epoch trace is
 *     cross-checked against the live learner, and the MachineReport
 *     and epoch-trace JSON exports must round-trip exactly;
 *  D. checkpoint determinism: two copies of the same warm machine
 *     under cloned policies must stay bit-identical;
 *  E. OfflineExhaustive with jobs == 1 vs jobs == 3 must produce
 *     bit-identical epochs (2-thread cases only);
 *  F. HillClimbing vs PhaseHillClimbing on phase-free streams must
 *     produce identical anchor trajectories and machine states (a
 *     single stable phase gives the phase learner nothing to reuse);
 *  G. open-system churn: a randomized arrival schedule drives the
 *     chosen policy through mid-run thread attach/detach. Per-job
 *     lifecycle accounting must reconcile exactly (snapshots
 *     monotone, jobs on one context disjoint in time, per-job
 *     committed sums to the machine total), periodic invariant
 *     sweeps must stay clean under churn, a same-config rerun must
 *     be bit-identical, and a 2-cell runGrid sweep must match at
 *     jobs == 1 vs jobs == 3;
 *  H. cross-learner differential: a randomly drawn pair from the
 *     full learner family (HILL, PHASE-HILL, BANDIT-UCB,
 *     BANDIT-EXP3, RL-Q) runs the same phase-free machine. Each
 *     learner must replay bit-identically under a fresh clone, emit
 *     an internally sane event stream, and trace one record per
 *     epoch whose installed partitions conserve the register file;
 *     the pair must agree on epoch cadence (final cycle and trace
 *     length), and each learner must survive a churn scenario with
 *     exact job accounting and a bit-identical cloned rerun.
 *
 * Failures come back as FuzzFindings tagged with their stage; a
 * failing case can be shrunk with minimizeFuzzCase, whose output is
 * the reproducer to quote in a bug report (seed + reduced shape).
 */

#ifndef SMTHILL_VALIDATE_DIFF_FUZZ_HH
#define SMTHILL_VALIDATE_DIFF_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/hill_climbing.hh"
#include "pipeline/smt_config.hh"
#include "workload/workloads.hh"

namespace smthill
{

/** One deterministic fuzz scenario, fully derived from its seed. */
struct FuzzCase
{
    std::uint64_t seed = 0;
    SmtConfig machine;    ///< small randomized machine
    Workload workload;    ///< random Table 2 combination
    HillConfig hill;      ///< randomized learner tuning
    int epochs = 6;       ///< measured epochs per stage
    Cycle warmup = 24 * 1024;
    int offlineStride = 8;   ///< enumeration stride for stage E
    int policyChoice = 0;    ///< 0 HILL, 1 PHASE-HILL, 2 DCRA, 3 FLUSH

    // Stage G open-system shape (drawn after every older field so
    // existing seeds keep expanding to the same A-F scenarios).
    int osJobs = 4;          ///< arrival-schedule length
    Cycle osMeanGap = 4096;  ///< mean inter-arrival gap, cycles
    bool osSla = false;      ///< draw per-job SLA weights

    // Stage H learner pair (drawn after the stage G fields so older
    // seeds keep expanding to the same A-G scenarios). Indices into
    // the learner family: 0 HILL, 1 PHASE-HILL, 2 BANDIT-UCB,
    // 3 BANDIT-EXP3, 4 RL-Q; always distinct.
    int learnerA = 0;
    int learnerB = 1;

    /** One-line description for logs and reproducer reports. */
    std::string str() const;
};

/** Expand @p seed into its scenario. */
FuzzCase makeFuzzCase(std::uint64_t seed);

/** One property/differential failure. */
struct FuzzFinding
{
    std::string stage;  ///< "A.partition-algebra", "E.offline-jobs", ...
    std::string check;  ///< invariant or property name
    std::string detail; ///< human-readable description
};

/** Outcome of one fuzz case. */
struct FuzzResult
{
    std::uint64_t seed = 0;
    std::vector<FuzzFinding> findings;

    bool passed() const { return findings.empty(); }

    /** One line per finding, prefixed with the stage. */
    std::string summary() const;
};

/** Run every stage of @p c. */
FuzzResult runFuzzCase(const FuzzCase &c);

/**
 * Shrink a failing case: repeatedly try fewer epochs, then fewer
 * threads, then less warmup, keeping each reduction that still
 * fails. @p budget bounds the number of re-runs. The result (still
 * failing, or @p c itself if nothing smaller fails) plus its seed is
 * the reproducer.
 */
FuzzCase minimizeFuzzCase(FuzzCase c, int budget = 12);

/** Aggregate over a seed range. */
struct FuzzSummary
{
    int casesRun = 0;
    std::vector<FuzzResult> failures;

    bool passed() const { return failures.empty(); }
};

/**
 * Run seeds [first_seed, first_seed + count). With @p verbose each
 * case prints a one-line PASS/FAIL; failures always print their
 * findings and minimized reproducer.
 */
FuzzSummary runFuzzSeeds(std::uint64_t first_seed, int count,
                         bool verbose = false);

} // namespace smthill

#endif // SMTHILL_VALIDATE_DIFF_FUZZ_HH
