#include "validate/diff_fuzz.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/event_trace.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "core/offline_exhaustive.hh"
#include "core/partitioning.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "phase/markov_predictor.hh"
#include "phase/phase_hill.hh"
#include "phase/phase_table.hh"
#include "policy/bandit.hh"
#include "policy/dcra.hh"
#include "policy/flush.hh"
#include "policy/rl_alloc.hh"
#include "validate/checked_cpu.hh"
#include "workload/open_system.hh"

namespace smthill
{

namespace
{

const char *
policyName(int choice)
{
    switch (choice & 3) {
      case 0: return "HILL";
      case 1: return "PHASE-HILL";
      case 2: return "DCRA";
      default: return "FLUSH";
    }
}

void
finding(FuzzResult &r, const char *stage, const char *check,
        std::string detail)
{
    r.findings.push_back(
        FuzzFinding{stage, check, std::move(detail)});
}

/** Move accumulated invariant violations into @p r under @p stage. */
void
drainChecker(FuzzResult &r, const char *stage, InvariantChecker &chk)
{
    for (const InvariantViolation &v : chk.violations())
        finding(r, stage, v.check.c_str(), v.detail);
    if (chk.totalViolations() > chk.violations().size()) {
        finding(r, stage, "overflow",
                msg(chk.totalViolations() - chk.violations().size(),
                    " further violations not recorded"));
    }
    chk.clear();
}

/** Random non-negative shares summing exactly to @p total. */
Partition
randomPartition(Rng &rng, int threads, int total)
{
    Partition p;
    p.numThreads = threads;
    int remaining = total;
    for (int i = 0; i < threads - 1; ++i) {
        int s = static_cast<int>(
            rng.nextBelow(static_cast<std::uint64_t>(remaining) + 1));
        p.share[i] = s;
        remaining -= s;
    }
    p.share[threads - 1] = remaining;
    return p;
}

/** Build and warm the case's machine on its Table 2 workload. */
SmtCpu
buildFuzzCpu(const FuzzCase &c)
{
    SmtCpu cpu(c.machine, c.workload.makeGenerators(c.seed));
    cpu.run(c.warmup);
    return cpu;
}

/** Stage H learner-family names, indexed like FuzzCase::learnerA. */
const char *
learnerName(int which)
{
    switch (which % 5) {
      case 0: return "HILL";
      case 1: return "PHASE-HILL";
      case 2: return "BANDIT-UCB";
      case 3: return "BANDIT-EXP3";
      default: return "RL-Q";
    }
}

/** Build the @p which-th learner of the stage H family for @p c. */
std::unique_ptr<ResourcePolicy>
makeLearner(const FuzzCase &c, int which)
{
    switch (which % 5) {
      case 0:
        return std::make_unique<HillClimbing>(c.hill);
      case 1:
        return std::make_unique<PhaseHillClimbing>(c.hill);
      case 2:
      case 3: {
        BanditConfig b;
        b.epochSize = c.hill.epochSize;
        b.stride = std::max(c.hill.minShare,
                            std::max(1, c.machine.intRegs / 8));
        b.metric = c.hill.metric;
        b.softwareCost = c.hill.softwareCost;
        b.minShare = c.hill.minShare;
        b.algo = which % 5 == 2 ? BanditAlgo::Ucb1 : BanditAlgo::Exp3;
        b.seed = c.seed;
        return std::make_unique<BanditAllocator>(b);
      }
      default: {
        RlConfig q;
        q.epochSize = c.hill.epochSize;
        q.delta = c.hill.delta;
        q.metric = c.hill.metric;
        q.softwareCost = c.hill.softwareCost;
        q.minShare = c.hill.minShare;
        q.seed = c.seed;
        return std::make_unique<RlAllocator>(q);
      }
    }
}

std::unique_ptr<ResourcePolicy>
makePolicy(const FuzzCase &c, HillClimbing **hill_out)
{
    *hill_out = nullptr;
    switch (c.policyChoice & 3) {
      case 0: {
        auto p = std::make_unique<HillClimbing>(c.hill);
        *hill_out = p.get();
        return p;
      }
      case 1: {
        auto p = std::make_unique<PhaseHillClimbing>(c.hill);
        *hill_out = p.get();
        return p;
      }
      case 2:
        return std::make_unique<DcraPolicy>();
      default:
        return std::make_unique<FlushPolicy>();
    }
}

// --- Stage A: partition algebra properties -------------------------

void
stagePartitionAlgebra(const FuzzCase &c, FuzzResult &r)
{
    static const char *kStage = "A.partition-algebra";
    Rng rng(c.seed ^ 0xA11AA11Au);

    for (int iter = 0; iter < 24; ++iter) {
        int nt = 2 + static_cast<int>(rng.nextBelow(kMaxThreads - 1));
        int total = nt + static_cast<int>(rng.nextBelow(257));
        Partition p = randomPartition(rng, nt, total);

        // clampMin conserves the total and, even when the requested
        // floor is infeasible, leaves every share at the best
        // feasible floor min(min_share, total / nt).
        int min_share = static_cast<int>(
            rng.nextBelow(static_cast<std::uint64_t>(total / nt) * 2 + 3));
        Partition q = p;
        q.clampMin(min_share);
        if (q.total() != total) {
            finding(r, kStage, "clamp_min.conservation",
                    msg("clampMin(", min_share, ") changed total ", total,
                        " -> ", q.total(), " (", p.str(), " -> ", q.str(),
                        ")"));
        }
        int floor_eff = std::min(min_share, total / nt);
        for (int i = 0; i < nt; ++i) {
            if (q.share[i] < floor_eff) {
                finding(r, kStage, "clamp_min.floor",
                        msg("clampMin(", min_share, ") left thread ", i,
                            " at ", q.share[i], ", feasible floor ",
                            floor_eff, " (", p.str(), " -> ", q.str(),
                            ")"));
            }
        }

        // trialPartition / moveAnchor conserve the total, never take
        // the favored thread down, and never push a donor below
        // min(its share, min_share) — including delta > anchor share.
        int favored = static_cast<int>(rng.nextBelow(nt));
        int delta = static_cast<int>(rng.nextBelow(65));
        int ms = static_cast<int>(rng.nextBelow(33));
        for (int which = 0; which < 2; ++which) {
            Partition t = which == 0
                              ? trialPartition(p, favored, delta, ms)
                              : moveAnchor(p, favored, delta, ms);
            const char *fn = which == 0 ? "trial" : "move_anchor";
            if (t.total() != total) {
                finding(r, kStage, msg(fn, ".conservation").c_str(),
                        msg(fn, "(favored=", favored, ", delta=", delta,
                            ", min=", ms, ") changed total ", total,
                            " -> ", t.total(), " (", p.str(), " -> ",
                            t.str(), ")"));
            }
            if (t.share[favored] < p.share[favored]) {
                finding(r, kStage, "favored_decreased",
                        msg(fn, " dropped favored thread ", favored,
                            " from ", p.share[favored], " to ",
                            t.share[favored]));
            }
            for (int i = 0; i < nt; ++i) {
                if (i == favored)
                    continue;
                int floor_i = std::min(p.share[i], ms);
                if (t.share[i] < floor_i) {
                    finding(r, kStage, "donor_below_floor",
                            msg(fn, " pushed thread ", i, " to ",
                                t.share[i], ", floor ", floor_i, " (",
                                p.str(), " -> ", t.str(), ")"));
                }
            }
        }

        // enumeratePartitions2: exactly floor(total/stride) - 1
        // trials, every share >= stride, every trial conserves the
        // total — including odd totals and stride near total / 2.
        int stride = 1 + static_cast<int>(rng.nextBelow(32));
        int tot2 = 2 * stride + static_cast<int>(rng.nextBelow(260));
        std::vector<Partition> trials = enumeratePartitions2(tot2, stride);
        int expected = tot2 / stride - 1;
        if (static_cast<int>(trials.size()) != expected) {
            finding(r, kStage, "enumerate2.count",
                    msg("enumeratePartitions2(", tot2, ", ", stride,
                        ") gave ", trials.size(), " trials, expected ",
                        expected));
        }
        for (std::size_t k = 0; k < trials.size(); ++k) {
            const Partition &t = trials[k];
            if (t.numThreads != 2 || t.total() != tot2 ||
                t.share[0] < stride || t.share[1] < stride ||
                t.share[0] != stride * static_cast<int>(k + 1)) {
                finding(r, kStage, "enumerate2.shape",
                        msg("enumeratePartitions2(", tot2, ", ", stride,
                            ") trial ", k, " is ", t.str()));
                break;
            }
        }
    }

    // The paper's configuration must always give exactly 127 trials.
    std::size_t paper = enumeratePartitions2(256, 2).size();
    if (paper != 127) {
        finding(r, kStage, "enumerate2.paper",
                msg("256/2 enumeration gave ", paper,
                    " trials, the paper's sweep has 127"));
    }
}

// --- Stage B: phase machinery properties ---------------------------

void
stagePhaseMachinery(const FuzzCase &c, FuzzResult &r)
{
    static const char *kStage = "B.phase-machinery";
    Rng rng(c.seed ^ 0xB22BB22Bu);

    // Phase IDs must stay bounded by the table capacity no matter
    // how many distinct signatures stream past (LRU recycling must
    // reuse IDs, or a long run grows the phase->partition maps of
    // every consumer without limit).
    int cap = 4 + static_cast<int>(rng.nextBelow(9));
    PhaseTable table(cap, 0.05);
    for (int s = 0; s < cap * 4; ++s) {
        BbvSignature sig;
        sig.weights.assign(kBbvEntries, 0.0);
        sig.weights[rng.nextBelow(kBbvEntries)] = 1.0;
        int id = table.classify(sig);
        if (id < 0 || id >= cap) {
            finding(r, kStage, "phase_table.id_bound",
                    msg("classification ", s, " returned phase id ", id,
                        ", table capacity ", cap));
            break;
        }
        if (table.size() > cap) {
            finding(r, kStage, "phase_table.size_bound",
                    msg("table holds ", table.size(), " phases, capacity ",
                        cap));
            break;
        }
    }

    // Before any observation the Markov predictor has no current
    // phase and must answer "don't know" (-1), not fabricate id 0.
    MarkovPhasePredictor cold(64);
    int first = cold.predict();
    if (first != -1) {
        finding(r, kStage, "markov.cold_start",
                msg("predictor with no history predicted phase ", first,
                    " instead of -1"));
    }
}

// --- Stage C: invariant-checked policy run + JSON round trips ------

void
stageCheckedRun(const FuzzCase &c, FuzzResult &r, const SmtCpu &warm)
{
    static const char *kStage = "C.invariants";

    HillClimbing *hill = nullptr;
    std::unique_ptr<ResourcePolicy> policy = makePolicy(c, &hill);
    EpochTracer tracer;
    if (hill != nullptr)
        policy->setEpochTracer(&tracer);

    InvariantChecker::Options opts;
    opts.strictPartitionTotal = true; // every in-repo policy conserves
    CheckedCpu checked(warm, opts, 1);
    MachineSnapshot before = MachineSnapshot::capture(checked.cpu());

    policy->attach(checked.cpu());
    checked.checkNow();
    for (int e = 0; e < c.epochs; ++e) {
        for (Cycle t = 0; t < c.hill.epochSize; ++t) {
            policy->cycle(checked.cpu());
            checked.step();
        }
        policy->epoch(checked.cpu(),
                      static_cast<std::uint64_t>(e));
        checked.checkNow();
    }
    if (hill != nullptr)
        checked.checker().checkEpochTrace(*hill, tracer);
    drainChecker(r, kStage, checked.checker());

    // MachineReport JSON round trip.
    MachineSnapshot after = MachineSnapshot::capture(checked.cpu());
    MachineReport rep =
        buildReport(before, after, c.workload.benchmarks);
    std::string text = rep.toJson().dump();
    Json parsed;
    std::string err;
    if (!Json::parse(text, parsed, err)) {
        finding(r, "C.json", "report.parse", err);
    } else {
        MachineReport back;
        if (!machineReportFromJson(parsed, back, err)) {
            finding(r, "C.json", "report.import", err);
        } else if (!(back == rep)) {
            finding(r, "C.json", "report.round_trip",
                    "report changed across toJson/fromJson");
        }
    }

    // Epoch-trace JSON round trip.
    if (hill != nullptr && !tracer.empty()) {
        std::string ttext = tracer.toJson(c.hill.metric).dump();
        Json tparsed;
        if (!Json::parse(ttext, tparsed, err)) {
            finding(r, "C.json", "trace.parse", err);
        } else {
            std::vector<EpochTraceRecord> recs;
            if (!EpochTracer::fromJson(tparsed, recs, err)) {
                finding(r, "C.json", "trace.import", err);
            } else if (!(recs == tracer.records())) {
                finding(r, "C.json", "trace.round_trip",
                        msg("trace changed across toJson/fromJson (",
                            recs.size(), " vs ", tracer.size(),
                            " records)"));
            }
        }
    }
}

/** Field-wise comparison of two runs that must be bit-identical. */
void
compareRuns(FuzzResult &r, const char *stage, const char *what,
            const RunResult &a, const RunResult &b, int threads)
{
    if (a.finalSnapshot.cycle != b.finalSnapshot.cycle) {
        finding(r, stage, "cycle_divergence",
                msg(what, ": final cycles ", a.finalSnapshot.cycle,
                    " vs ", b.finalSnapshot.cycle));
    }
    for (int i = 0; i < threads; ++i) {
        if (a.stats.committed[i] != b.stats.committed[i] ||
            a.stats.fetched[i] != b.stats.fetched[i] ||
            a.stats.flushed[i] != b.stats.flushed[i] ||
            a.stats.mispredicts[i] != b.stats.mispredicts[i]) {
            finding(r, stage, "counter_divergence",
                    msg(what, ": thread ", i, " counters diverge "
                        "(committed ", a.stats.committed[i], " vs ",
                        b.stats.committed[i], ", fetched ",
                        a.stats.fetched[i], " vs ", b.stats.fetched[i],
                        ")"));
        }
        if (a.overallIpc.ipc[i] != b.overallIpc.ipc[i]) {
            finding(r, stage, "ipc_divergence",
                    msg(what, ": thread ", i, " IPC ",
                        a.overallIpc.ipc[i], " vs ",
                        b.overallIpc.ipc[i]));
        }
    }
}

// --- Stage D: checkpoint-copy determinism --------------------------

void
stageCopyDeterminism(const FuzzCase &c, FuzzResult &r,
                     const SmtCpu &warm)
{
    static const char *kStage = "D.copy-determinism";

    HillClimbing *ignored = nullptr;
    std::unique_ptr<ResourcePolicy> p1 = makePolicy(c, &ignored);
    std::unique_ptr<ResourcePolicy> p2 = p1->clone();

    RunResult r1 =
        runPolicyOn(warm, *p1, c.epochs, c.hill.epochSize);
    RunResult r2 =
        runPolicyOn(warm, *p2, c.epochs, c.hill.epochSize);
    compareRuns(r, kStage, policyName(c.policyChoice), r1, r2,
                c.machine.numThreads);
}

// --- Stage E: offline serial vs parallel sweep ---------------------

void
stageOfflineJobs(const FuzzCase &c, FuzzResult &r, const SmtCpu &warm)
{
    static const char *kStage = "E.offline-jobs";
    if (c.machine.numThreads != 2)
        return; // the exhaustive learner is 2-context only

    OfflineConfig oc;
    oc.epochSize = c.hill.epochSize;
    oc.stride = c.offlineStride;
    oc.metric = c.hill.metric;
    oc.singleIpc.fill(1.0);
    oc.keepCurves = true;

    oc.jobs = 1;
    OfflineExhaustive serial(oc);
    oc.jobs = 3;
    OfflineExhaustive parallel(oc);

    // Two deliberate value-semantics clones per fuzz case; the
    // divergence check depends on them being full copies.
    SmtCpu a = warm; // smthill-lint: allow(cpu-copy-hot-path)
    SmtCpu b = warm; // smthill-lint: allow(cpu-copy-hot-path)
    for (int e = 0; e < 2; ++e) {
        OfflineEpoch ea = serial.stepEpoch(a);
        OfflineEpoch eb = parallel.stepEpoch(b);
        if (!(ea.best == eb.best)) {
            finding(r, kStage, "best_partition",
                    msg("epoch ", e, ": 1-job best ", ea.best.str(),
                        " vs 3-job best ", eb.best.str()));
        }
        if (ea.metricValue != eb.metricValue) {
            finding(r, kStage, "metric_value",
                    msg("epoch ", e, ": 1-job metric ", ea.metricValue,
                        " vs 3-job ", eb.metricValue));
        }
        if (ea.curve != eb.curve || ea.curveShares != eb.curveShares) {
            finding(r, kStage, "trial_curve",
                    msg("epoch ", e,
                        ": metric-vs-partition curves diverge between "
                        "1-job and 3-job sweeps"));
        }
    }
    for (int i = 0; i < 2; ++i) {
        if (a.stats().committed[i] != b.stats().committed[i]) {
            finding(r, kStage, "machine_divergence",
                    msg("thread ", i, " committed ",
                        a.stats().committed[i], " (1 job) vs ",
                        b.stats().committed[i], " (3 jobs)"));
        }
    }
}

// --- Stage F: HILL vs PHASE-HILL on phase-free streams -------------

void
stagePhaseFreeDiff(const FuzzCase &c, FuzzResult &r)
{
    static const char *kStage = "F.phase-free-diff";

    // Synthesize programs with no phase behavior at all: on a single
    // stable phase the predictor always forecasts "same phase", so
    // overrideAnchor must be the identity and PHASE-HILL must walk
    // exactly HILL's anchor trajectory.
    Rng rng(c.seed ^ 0xF00DF00Du);
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < c.machine.numThreads; ++i) {
        ProfileParams pp;
        pp.name = msg("fuzz-flat-", i);
        pp.seed = c.seed * 1000 + static_cast<std::uint64_t>(i) + 1;
        pp.freqClass = 0;
        pp.phaseSwing = 0.0;
        pp.numBlocks = 8 + static_cast<int>(rng.nextBelow(17));
        pp.avgBlockLen = 6 + static_cast<int>(rng.nextBelow(7));
        pp.loadFrac = 0.20 + 0.10 * rng.nextDouble();
        pp.serialFrac = 0.20 + 0.30 * rng.nextDouble();
        pp.pLoadWarm = 0.01 * rng.nextDouble();
        pp.pLoadCold = 0.002 * rng.nextDouble();
        gens.emplace_back(buildProfile(pp),
                          static_cast<std::uint64_t>(i));
    }
    SmtCpu flat(c.machine, std::move(gens));
    flat.run(16 * 1024);

    HillClimbing plain(c.hill);
    PhaseHillClimbing phased(c.hill);
    EpochTracer ta;
    EpochTracer tb;
    plain.setEpochTracer(&ta);
    phased.setEpochTracer(&tb);
    EventTrace eva;
    EventTrace evb;
    plain.setEventTrace(&eva, 0);
    phased.setEventTrace(&evb, 0);

    RunResult ra =
        runPolicyOn(flat, plain, c.epochs, c.hill.epochSize);
    RunResult rb =
        runPolicyOn(flat, phased, c.epochs, c.hill.epochSize);

    // Event-level equivalence: outside the phase category (which only
    // PHASE-HILL emits), the two runs must produce the same stream;
    // the first divergent event localizes a drift to the exact
    // decision that caused it.
    auto comparable = [](const EventTrace &t) {
        std::vector<SimEvent> out;
        for (SimEvent &e : t.events()) {
            if (e.cat != "phase")
                out.push_back(std::move(e));
        }
        return out;
    };
    EventDiff d = diffEvents(comparable(eva), comparable(evb));
    if (d.diverged) {
        finding(r, kStage, "event_divergence",
                msg("HILL vs PHASE-HILL: ", d.description));
    }

    // Both streams must be internally sane: per (pid, tid) track, sim
    // time only moves forward.
    InvariantChecker events_chk;
    events_chk.checkEventStream(eva.events());
    events_chk.checkEventStream(evb.events());
    drainChecker(r, kStage, events_chk);

    if (ta.size() != tb.size()) {
        finding(r, kStage, "trace_length",
                msg("HILL traced ", ta.size(), " epochs, PHASE-HILL ",
                    tb.size()));
        return;
    }
    for (std::size_t e = 0; e < ta.size(); ++e) {
        const EpochTraceRecord &ea = ta.records()[e];
        const EpochTraceRecord &eb = tb.records()[e];
        if (!(ea.anchor == eb.anchor) || !(ea.trial == eb.trial)) {
            finding(r, kStage, "anchor_divergence",
                    msg("epoch ", e, ": HILL anchor ", ea.anchor.str(),
                        " trial ", ea.trial.str(), " vs PHASE-HILL ",
                        eb.anchor.str(), " trial ", eb.trial.str()));
            break;
        }
    }
    compareRuns(r, kStage, "HILL vs PHASE-HILL", ra, rb,
                c.machine.numThreads);
}

// --- Stage G: open-system churn ------------------------------------

/** Bit-exact comparison of two open-system runs of one config. */
bool
sameOpenSystemRun(const OpenSystemResult &a, const OpenSystemResult &b)
{
    if (a.cycles != b.cycles || a.committedTotal != b.committedTotal ||
        a.completedJobs != b.completedJobs ||
        a.horizonJobs != b.horizonJobs ||
        a.maxQueueDepth != b.maxQueueDepth ||
        a.jobs.size() != b.jobs.size())
        return false;
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
        const JobRecord &ja = a.jobs[j];
        const JobRecord &jb = b.jobs[j];
        if (ja.arriveCycle != jb.arriveCycle ||
            ja.attachCycle != jb.attachCycle ||
            ja.departCycle != jb.departCycle ||
            ja.context != jb.context || ja.attached != jb.attached ||
            ja.completed != jb.completed ||
            !(ja.atAttach == jb.atAttach) ||
            !(ja.atDepart == jb.atDepart))
            return false;
    }
    return true;
}

/** Per-job lifecycle accounting identities over one finished run. */
void
checkJobAccounting(const FuzzCase &c, FuzzResult &r, const char *stage,
                   const OpenSystemResult &res)
{
    std::uint64_t job_committed = 0;
    // Per-context job residency intervals, for disjointness.
    std::vector<std::vector<std::pair<Cycle, Cycle>>> spans(
        static_cast<std::size_t>(c.machine.numThreads));

    for (const JobRecord &job : res.jobs) {
        job_committed += job.committed();
        if (!job.attached) {
            if (job.residency() != 0 || job.committed() != 0) {
                finding(r, stage, "unplaced_job_ran",
                        msg("job ", job.jobId, " never attached but "
                            "shows residency ", job.residency(),
                            " / committed ", job.committed()));
            }
            continue;
        }
        if (job.context < 0 || job.context >= c.machine.numThreads) {
            finding(r, stage, "context_range",
                    msg("job ", job.jobId, " on context ", job.context,
                        ", machine has ", c.machine.numThreads));
            continue;
        }
        if (job.attachCycle < job.arriveCycle) {
            finding(r, stage, "attach_before_arrival",
                    msg("job ", job.jobId, " attached at ",
                        job.attachCycle, ", arrived at ",
                        job.arriveCycle));
        }
        // Snapshots bracket the residency: monotone in every counter.
        const ContextSnapshot &s0 = job.atAttach;
        const ContextSnapshot &s1 = job.atDepart;
        if (s1.cycle < s0.cycle || s1.committed < s0.committed ||
            s1.fetched < s0.fetched || s1.flushed < s0.flushed ||
            s1.branches < s0.branches ||
            s1.mispredicts < s0.mispredicts ||
            s1.dl1Misses < s0.dl1Misses || s1.l2Misses < s0.l2Misses) {
            finding(r, stage, "snapshot_monotonicity",
                    msg("job ", job.jobId,
                        " depart snapshot below attach snapshot"));
        }
        if (job.completed) {
            if (job.committed() < job.instructions ||
                job.committed() >=
                    job.instructions +
                        static_cast<std::uint64_t>(
                            c.machine.commitWidth)) {
                finding(r, stage, "departure_bound",
                        msg("job ", job.jobId, " departed at ",
                            job.committed(), " committed, bound ",
                            job.instructions, " (commit width ",
                            c.machine.commitWidth, ")"));
            }
            if (job.residency() == 0) {
                finding(r, stage, "zero_residency",
                        msg("completed job ", job.jobId,
                            " has zero residency"));
            }
        }
        spans[static_cast<std::size_t>(job.context)].push_back(
            {job.attachCycle, job.departCycle});
    }

    // A reused context holds one job at a time: residency intervals
    // on each context must be pairwise disjoint.
    for (std::size_t ctx = 0; ctx < spans.size(); ++ctx) {
        auto &v = spans[ctx];
        std::sort(v.begin(), v.end());
        for (std::size_t k = 1; k < v.size(); ++k) {
            if (v[k].first < v[k - 1].second) {
                finding(r, stage, "context_overlap",
                        msg("context ", ctx, " holds two jobs at once ([",
                            v[k - 1].first, ",", v[k - 1].second,
                            ") and [", v[k].first, ",", v[k].second,
                            "))"));
            }
        }
    }

    // Idle contexts are parked (squashed, disabled), so every
    // committed instruction belongs to exactly one job's residency.
    if (job_committed != res.committedTotal) {
        finding(r, stage, "committed_attribution",
                msg("per-job committed sums to ", job_committed,
                    ", machine committed ", res.committedTotal));
    }

    // The per-job report keeps jobs with distinct lifetimes on
    // distinct rows: one row per job that ever ran.
    std::size_t resident_jobs = 0;
    for (const JobRecord &job : res.jobs)
        if (job.residency() > 0)
            ++resident_jobs;
    MachineReport rep = buildJobReport(res);
    if (rep.threads.size() != resident_jobs) {
        finding(r, stage, "job_report_rows",
                msg("job report has ", rep.threads.size(),
                    " rows for ", resident_jobs, " resident jobs"));
    }
}

void
stageOpenSystemChurn(const FuzzCase &c, FuzzResult &r)
{
    static const char *kStage = "G.open-system";

    OpenSystemConfig oc;
    oc.seed = c.seed ^ 0x05E205E2u;
    oc.arrivalRate = 1.0 / static_cast<double>(c.osMeanGap);
    oc.numJobs = c.osJobs;
    oc.minJobInstructions = 3 * 1024;
    oc.maxJobInstructions = 8 * 1024;
    oc.epochSize = c.hill.epochSize;
    oc.horizon = 512 * 1024; // bounded even if a policy livelocks
    oc.slaWeights = c.osSla;

    OpenSystem sys(c.machine, oc);

    HillClimbing *ignored = nullptr;
    std::unique_ptr<ResourcePolicy> p1 = makePolicy(c, &ignored);
    std::unique_ptr<ResourcePolicy> p2 = p1->clone();

    // Run 1: periodic full-machine invariant sweeps under churn.
    InvariantChecker chk;
    std::uint64_t tick = 0;
    sys.setCycleObserver([&](const SmtCpu &m) {
        if (++tick % 64 == 0)
            chk.checkCpu(m);
    });
    OpenSystemResult r1 = sys.run(*p1);
    drainChecker(r, kStage, chk);
    checkJobAccounting(c, r, kStage, r1);

    // Run 2: same config + cloned policy must be bit-identical.
    sys.setCycleObserver(nullptr);
    OpenSystemResult r2 = sys.run(*p2);
    if (!sameOpenSystemRun(r1, r2)) {
        finding(r, kStage, "rerun_divergence",
                msg("same-config rerun diverged (", r1.cycles, " vs ",
                    r2.cycles, " cycles, ", r1.committedTotal, " vs ",
                    r2.committedTotal, " committed)"));
    }

    // Grid cross-check: a 2-cell lambda sweep reduced serially must
    // not depend on the worker count.
    auto sweep = [&](int jobs) {
        std::vector<OpenSystemResult> out(2);
        runGrid(2, jobs, [&](std::size_t cell) {
            OpenSystemConfig cc = oc;
            cc.arrivalRate =
                oc.arrivalRate / static_cast<double>(cell + 1);
            OpenSystem s(c.machine, cc);
            HillClimbing *ig = nullptr;
            std::unique_ptr<ResourcePolicy> p = makePolicy(c, &ig);
            out[cell] = s.run(*p);
        });
        return out;
    };
    std::vector<OpenSystemResult> serial = sweep(1);
    std::vector<OpenSystemResult> threaded = sweep(3);
    for (std::size_t cell = 0; cell < serial.size(); ++cell) {
        if (!sameOpenSystemRun(serial[cell], threaded[cell])) {
            finding(r, kStage, "grid_jobs_divergence",
                    msg("sweep cell ", cell,
                        " diverges between runGrid jobs=1 and jobs=3"));
        }
    }
}

// --- Stage H: cross-learner differential ---------------------------

void
stageLearnerPairDiff(const FuzzCase &c, FuzzResult &r)
{
    static const char *kStage = "H.learner-pair";

    // Phase-free machine, stage-F construction with its own draw
    // stream so F's scenarios stay byte-identical.
    Rng rng(c.seed ^ 0x48AA48AAu);
    std::vector<StreamGenerator> gens;
    for (int i = 0; i < c.machine.numThreads; ++i) {
        ProfileParams pp;
        pp.name = msg("fuzz-pair-", i);
        pp.seed = c.seed * 1000 + static_cast<std::uint64_t>(i) + 1;
        pp.freqClass = 0;
        pp.phaseSwing = 0.0;
        pp.numBlocks = 8 + static_cast<int>(rng.nextBelow(17));
        pp.avgBlockLen = 6 + static_cast<int>(rng.nextBelow(7));
        pp.loadFrac = 0.20 + 0.10 * rng.nextDouble();
        pp.serialFrac = 0.20 + 0.30 * rng.nextDouble();
        pp.pLoadWarm = 0.01 * rng.nextDouble();
        pp.pLoadCold = 0.002 * rng.nextDouble();
        gens.emplace_back(buildProfile(pp),
                          static_cast<std::uint64_t>(i));
    }
    SmtCpu flat(c.machine, std::move(gens));
    flat.run(16 * 1024);

    const int pair[2] = {c.learnerA, c.learnerB};
    std::array<Cycle, 2> finalCycle{};
    std::array<std::size_t, 2> traceLen{};
    for (int k = 0; k < 2; ++k) {
        const char *who = learnerName(pair[k]);
        std::unique_ptr<ResourcePolicy> p = makeLearner(c, pair[k]);
        std::unique_ptr<ResourcePolicy> q = p->clone();
        EpochTracer tracer;
        p->setEpochTracer(&tracer);
        EventTrace evt;
        p->setEventTrace(&evt, 0);

        // Clone determinism: a fresh clone must replay the original
        // bit for bit — including the bandit/RL rng stream position.
        RunResult ra =
            runPolicyOn(flat, *p, c.epochs, c.hill.epochSize);
        RunResult rb =
            runPolicyOn(flat, *q, c.epochs, c.hill.epochSize);
        compareRuns(r, kStage, who, ra, rb, c.machine.numThreads);
        finalCycle[k] = ra.finalSnapshot.cycle;
        traceLen[k] = tracer.size();

        // The decision-audit event stream must be internally sane.
        InvariantChecker chk;
        chk.checkEventStream(evt.events());
        drainChecker(r, kStage, chk);

        // Epoch-trace sanity: one record per boundary; any installed
        // partition conserves the register file; metrics are finite.
        if (tracer.size() != static_cast<std::size_t>(c.epochs)) {
            finding(r, kStage, "trace_length",
                    msg(who, " traced ", tracer.size(), " epochs of ",
                        c.epochs));
        }
        for (std::size_t e = 0; e < tracer.size(); ++e) {
            const EpochTraceRecord &rec = tracer.records()[e];
            if (rec.partitioned &&
                rec.trial.total() != c.machine.intRegs) {
                finding(r, kStage, "partition_conservation",
                        msg(who, " epoch ", e, " ran partition ",
                            rec.trial.str(), ", register file ",
                            c.machine.intRegs));
            }
            if (!std::isfinite(rec.metricValue)) {
                finding(r, kStage, "metric_finite",
                        msg(who, " epoch ", e,
                            " has non-finite metric value"));
            }
        }
    }

    // The pair runs the same machine on the same cadence: epoch
    // bookkeeping (not learning decisions) must align exactly.
    if (finalCycle[0] != finalCycle[1]) {
        finding(r, kStage, "cycle_alignment",
                msg(learnerName(pair[0]), " ended at cycle ",
                    finalCycle[0], ", ", learnerName(pair[1]), " at ",
                    finalCycle[1]));
    }
    if (traceLen[0] != traceLen[1]) {
        finding(r, kStage, "trace_alignment",
                msg(learnerName(pair[0]), " traced ", traceLen[0],
                    " epochs, ", learnerName(pair[1]), " traced ",
                    traceLen[1]));
    }

    // Churn leg: each learner of the pair survives a randomized
    // arrival schedule with exact job accounting, and a cloned rerun
    // stays bit-identical.
    OpenSystemConfig oc;
    oc.seed = c.seed ^ 0x48AA0001u;
    oc.arrivalRate = 1.0 / static_cast<double>(c.osMeanGap);
    oc.numJobs = c.osJobs;
    oc.minJobInstructions = 3 * 1024;
    oc.maxJobInstructions = 8 * 1024;
    oc.epochSize = c.hill.epochSize;
    oc.horizon = 256 * 1024;
    oc.slaWeights = c.osSla;
    OpenSystem sys(c.machine, oc);
    for (int k = 0; k < 2; ++k) {
        std::unique_ptr<ResourcePolicy> p = makeLearner(c, pair[k]);
        std::unique_ptr<ResourcePolicy> q = p->clone();
        OpenSystemResult r1 = sys.run(*p);
        checkJobAccounting(c, r, kStage, r1);
        OpenSystemResult r2 = sys.run(*q);
        if (!sameOpenSystemRun(r1, r2)) {
            finding(r, kStage, "churn_rerun_divergence",
                    msg(learnerName(pair[k]),
                        ": same-config churn rerun diverged (",
                        r1.cycles, " vs ", r2.cycles, " cycles, ",
                        r1.committedTotal, " vs ", r2.committedTotal,
                        " committed)"));
        }
    }
}

} // namespace

// --- Case construction ---------------------------------------------

FuzzCase
makeFuzzCase(std::uint64_t seed)
{
    Rng rng(seed ^ 0xD1FFD1FFD1FFD1FFull);
    FuzzCase c;
    c.seed = seed;

    int nt = 2 + static_cast<int>(rng.nextBelow(3)); // 2..4 contexts
    c.workload = randomWorkload(nt, seed);

    SmtConfig &m = c.machine;
    m.numThreads = nt;
    m.fetchWidth = 4 << rng.nextBelow(2); // 4 or 8
    m.issueWidth = m.fetchWidth;
    m.commitWidth = m.fetchWidth;
    m.fetchThreadsPerCycle = 1 + static_cast<int>(rng.nextBelow(2));
    m.ifqSize =
        m.fetchWidth * (2 + static_cast<int>(rng.nextBelow(2)));
    m.intIqSize = 16 + 8 * static_cast<int>(rng.nextBelow(3));
    m.fpIqSize = m.intIqSize;
    m.lsqSize = 24 + 8 * static_cast<int>(rng.nextBelow(3));
    m.robSize = 48 + 16 * static_cast<int>(rng.nextBelow(4));
    m.intRegs = 32 + 16 * static_cast<int>(rng.nextBelow(4));
    m.fpRegs = m.intRegs;
    m.intAddUnits = 2 + static_cast<int>(rng.nextBelow(3));
    m.intMulUnits = 1 + static_cast<int>(rng.nextBelow(2));
    m.memPorts = 1 + static_cast<int>(rng.nextBelow(3));
    m.fpAddUnits = 1 + static_cast<int>(rng.nextBelow(2));
    m.fpMulUnits = 1 + static_cast<int>(rng.nextBelow(2));
    m.gshareEntries = 1024;
    m.bimodalEntries = 512;
    m.metaEntries = 1024;
    m.btbEntries = 256u << rng.nextBelow(2);
    m.btbWays = 2u << rng.nextBelow(2);

    bool small_l1 = rng.chance(0.5);
    std::uint32_t l1_ways = small_l1 ? 1 : 2;
    std::uint64_t l1_bytes = small_l1 ? 4 * 1024 : 8 * 1024;
    m.mem.il1 = CacheConfig{"il1", l1_bytes, 64, l1_ways};
    m.mem.dl1 = CacheConfig{"dl1", l1_bytes, 64, l1_ways};
    bool small_l2 = rng.chance(0.5);
    m.mem.ul2 = CacheConfig{"ul2",
                            small_l2 ? 32 * 1024ull : 64 * 1024ull, 64,
                            small_l2 ? 2u : 4u};
    m.mem.l2Latency = 10 + 5 * static_cast<Cycle>(rng.nextBelow(3));
    m.mem.memFirstChunk =
        100 + 50 * static_cast<Cycle>(rng.nextBelow(3));
    m.validate();

    HillConfig &h = c.hill;
    h.epochSize = Cycle{1024} << rng.nextBelow(3); // 1K/2K/4K cycles
    h.delta = 1 << rng.nextBelow(4);               // 1..8 registers
    h.minShare = 1 << rng.nextBelow(3);            // 1/2/4
    switch (rng.nextBelow(3)) {
      case 0: h.metric = PerfMetric::AvgIpc; break;
      case 1: h.metric = PerfMetric::WeightedIpc; break;
      default: h.metric = PerfMetric::HarmonicWeightedIpc; break;
    }
    h.softwareCost = rng.chance(0.5) ? 200 : 50;
    h.samplePeriod = 3 + static_cast<int>(rng.nextBelow(6));
    h.sampleSingleIpc = true;

    c.epochs = 5 + static_cast<int>(rng.nextBelow(4));
    c.warmup = 16 * 1024 + 8 * 1024 * rng.nextBelow(3);
    c.offlineStride =
        std::max(1, m.intRegs / (4 << rng.nextBelow(3)));
    c.policyChoice = static_cast<int>(rng.nextBelow(4));

    // Stage G draws come last: older seeds' A-F scenarios stay
    // byte-identical across the schema growth.
    c.osJobs = 3 + static_cast<int>(rng.nextBelow(3)); // 3..5 jobs
    c.osMeanGap = Cycle{1024} << rng.nextBelow(3);     // 1K/2K/4K
    c.osSla = rng.chance(0.5);

    // Stage H draws come last for the same reason: the learner pair
    // extends the schema without disturbing any A-G expansion.
    c.learnerA = static_cast<int>(rng.nextBelow(5));
    c.learnerB = static_cast<int>(rng.nextBelow(4));
    if (c.learnerB >= c.learnerA)
        ++c.learnerB; // uniform over distinct pairs
    return c;
}

std::string
FuzzCase::str() const
{
    return msg("seed=", seed, " workload=", workload.name, " threads=",
               machine.numThreads, " regs=", machine.intRegs,
               " policy=", policyName(policyChoice), " metric=",
               metricName(hill.metric), " epochSize=", hill.epochSize,
               " delta=", hill.delta, " minShare=", hill.minShare,
               " epochs=", epochs, " warmup=", warmup, " stride=",
               offlineStride, " osJobs=", osJobs, " osGap=", osMeanGap,
               " osSla=", osSla, " pair=", learnerName(learnerA), "/",
               learnerName(learnerB));
}

std::string
FuzzResult::summary() const
{
    std::string out;
    for (const FuzzFinding &f : findings)
        out += msg("[", f.stage, "/", f.check, "] ", f.detail, "\n");
    return out;
}

// --- Driving -------------------------------------------------------

FuzzResult
runFuzzCase(const FuzzCase &c)
{
    FuzzResult r;
    r.seed = c.seed;

    stagePartitionAlgebra(c, r);
    stagePhaseMachinery(c, r);

    SmtCpu warm = buildFuzzCpu(c);
    stageCheckedRun(c, r, warm);
    stageCopyDeterminism(c, r, warm);
    stageOfflineJobs(c, r, warm);
    stagePhaseFreeDiff(c, r);
    stageOpenSystemChurn(c, r);
    stageLearnerPairDiff(c, r);
    return r;
}

FuzzCase
minimizeFuzzCase(FuzzCase c, int budget)
{
    int runs = 0;
    auto stillFails = [&](const FuzzCase &candidate) {
        if (runs >= budget)
            return false;
        ++runs;
        return !runFuzzCase(candidate).passed();
    };

    while (c.epochs > 1) {
        FuzzCase t = c;
        t.epochs = std::max(1, c.epochs / 2);
        if (t.epochs == c.epochs || !stillFails(t))
            break;
        c = t;
    }
    if (c.workload.numThreads() > 2) {
        FuzzCase t = c;
        t.workload = makeCustomWorkload(
            {c.workload.benchmarks[0], c.workload.benchmarks[1]});
        t.machine.numThreads = 2;
        if (stillFails(t))
            c = t;
    }
    while (c.warmup > 2048) {
        FuzzCase t = c;
        t.warmup = c.warmup / 2;
        if (!stillFails(t))
            break;
        c = t;
    }
    return c;
}

FuzzSummary
runFuzzSeeds(std::uint64_t first_seed, int count, bool verbose)
{
    FuzzSummary s;
    for (int k = 0; k < count; ++k) {
        std::uint64_t seed = first_seed + static_cast<std::uint64_t>(k);
        FuzzCase c = makeFuzzCase(seed);
        FuzzResult r = runFuzzCase(c);
        ++s.casesRun;
        if (verbose || !r.passed()) {
            inform(msg(r.passed() ? "PASS " : "FAIL ", c.str()));
        }
        if (!r.passed()) {
            inform(r.summary());
            FuzzCase reduced = minimizeFuzzCase(c);
            inform(msg("reproducer: ", reduced.str()));
            s.failures.push_back(std::move(r));
        }
    }
    return s;
}

} // namespace smthill
