#include "branch/predictors.hh"

#include "common/log.hh"

namespace smthill
{

namespace
{

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** 2-bit saturating counter helpers; initial state = weakly taken. */
constexpr std::uint8_t kWeaklyNot = 1;
constexpr std::uint8_t kWeaklyTaken = 2;

void
train(std::uint8_t &ctr, bool taken)
{
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table(entries, kWeaklyTaken), mask(entries - 1)
{
    if (!isPow2(entries))
        fatal("BimodalPredictor: entries must be a power of two");
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table[index(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    train(table[index(pc)], taken);
}

GsharePredictor::GsharePredictor(std::size_t entries, int history_bits)
    : table(entries, kWeaklyTaken),
      mask(entries - 1),
      histMask((std::uint64_t{1} << history_bits) - 1)
{
    if (!isPow2(entries))
        fatal("GsharePredictor: entries must be a power of two");
    if (history_bits <= 0 || history_bits > 32)
        fatal("GsharePredictor: bad history length");
}

std::size_t
GsharePredictor::index(Addr pc, std::uint64_t hist) const
{
    return ((pc >> 2) ^ hist) & mask;
}

bool
GsharePredictor::predictAndShift(Addr pc)
{
    bool pred = table[index(pc, ghr)] >= 2;
    ghr = ((ghr << 1) | (pred ? 1 : 0)) & histMask;
    return pred;
}

bool
GsharePredictor::peek(Addr pc) const
{
    return table[index(pc, ghr)] >= 2;
}

void
GsharePredictor::update(Addr pc, std::uint64_t history_at_predict,
                        bool taken)
{
    train(table[index(pc, history_at_predict)], taken);
}

void
GsharePredictor::repairHistory(std::uint64_t history_at_predict,
                               bool taken)
{
    ghr = ((history_at_predict << 1) | (taken ? 1 : 0)) & histMask;
}

HybridPredictor::HybridPredictor(std::size_t meta_entries,
                                 std::size_t gshare_entries,
                                 std::size_t bimodal_entries)
    : bimodal(bimodal_entries),
      gshare(gshare_entries),
      meta(meta_entries, kWeaklyTaken),
      metaMask(meta_entries - 1)
{
    if (!isPow2(meta_entries))
        fatal("HybridPredictor: meta entries must be a power of two");
}

HybridPredictor::Lookup
HybridPredictor::predict(Addr pc)
{
    Lookup res;
    res.historyAtPredict = gshare.history();
    res.bimodalSaid = bimodal.predict(pc);
    res.gshareSaid = gshare.predictAndShift(pc);
    bool use_gshare = meta[metaIndex(pc)] >= 2;
    res.prediction = use_gshare ? res.gshareSaid : res.bimodalSaid;
    return res;
}

void
HybridPredictor::update(Addr pc, const Lookup &lookup, bool taken)
{
    bimodal.update(pc, taken);
    gshare.update(pc, lookup.historyAtPredict, taken);
    // The chooser trains toward whichever component was right when
    // they disagreed.
    if (lookup.gshareSaid != lookup.bimodalSaid)
        train(meta[metaIndex(pc)], lookup.gshareSaid == taken);
}

void
HybridPredictor::repairHistory(const Lookup &lookup, bool taken)
{
    gshare.repairHistory(lookup.historyAtPredict, taken);
}

Btb::Btb(std::size_t entries, std::size_t ways)
    : sets(entries),
      numSets(entries / ways),
      numWays(ways),
      setMask(entries / ways - 1)
{
    if (ways == 0 || entries % ways != 0)
        fatal("Btb: entries must be a multiple of ways");
    if (!isPow2(numSets))
        fatal("Btb: set count must be a power of two");
}

bool
Btb::lookup(Addr pc, Addr &target)
{
    std::size_t base = setIndex(pc) * numWays;
    for (std::size_t w = 0; w < numWays; ++w) {
        Entry &e = sets[base + w];
        if (e.valid && e.tag == pc) {
            e.lru = ++lruClock;
            target = e.target;
            return true;
        }
    }
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    std::size_t base = setIndex(pc) * numWays;
    std::size_t victim = 0;
    std::uint32_t oldest = ~std::uint32_t{0};
    for (std::size_t w = 0; w < numWays; ++w) {
        Entry &e = sets[base + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lru = ++lruClock;
            return;
        }
        if (!e.valid) {
            victim = w;
            oldest = 0;
        } else if (e.lru < oldest) {
            victim = w;
            oldest = e.lru;
        }
    }
    Entry &v = sets[base + victim];
    v.valid = true;
    v.tag = pc;
    v.target = target;
    v.lru = ++lruClock;
}

ReturnAddressStack::ReturnAddressStack(std::size_t entries)
    : stack(entries, 0)
{
    if (entries == 0)
        fatal("ReturnAddressStack: need at least one entry");
}

void
ReturnAddressStack::push(Addr return_pc)
{
    top = (top + 1) % stack.size();
    stack[top] = return_pc;
    if (depth < stack.size())
        ++depth;
}

Addr
ReturnAddressStack::pop()
{
    if (depth == 0)
        return 0;
    Addr v = stack[top];
    top = (top + stack.size() - 1) % stack.size();
    --depth;
    return v;
}

} // namespace smthill
