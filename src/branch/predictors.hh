/**
 * @file
 * Branch prediction: 2-bit bimodal, gshare, hybrid (meta-chooser),
 * a set-associative BTB, and a return address stack, matching the
 * Table 1 configuration (hybrid 8192-entry gshare / 2048-entry
 * bimodal, 8192-entry meta table, 2048-entry 4-way BTB, 64-entry
 * RAS).
 *
 * All predictors hold their tables by value so they are captured by
 * whole-machine checkpoints.
 */

#ifndef SMTHILL_BRANCH_PREDICTORS_HH
#define SMTHILL_BRANCH_PREDICTORS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace smthill
{

/** Table of 2-bit saturating counters indexed by hashed PC. */
class BimodalPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 2048);

    /** @return predicted direction for the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Train the entry for @p pc with the resolved direction. */
    void update(Addr pc, bool taken);

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask; }

    std::vector<std::uint8_t> table;
    std::size_t mask;
};

/**
 * Gshare: global history XOR PC indexes a table of 2-bit counters.
 * The global history register is speculatively updated at predict
 * time and repaired on a mispredict, which is the behavior the
 * pipeline needs when it stops fetching past a mispredicted branch.
 */
class GsharePredictor
{
  public:
    /**
     * @param entries table size; must be a power of two
     * @param history_bits global history length
     */
    explicit GsharePredictor(std::size_t entries = 8192,
                             int history_bits = 13);

    /** @return predicted direction; speculatively shifts history. */
    bool predictAndShift(Addr pc);

    /** @return predicted direction without touching history. */
    bool peek(Addr pc) const;

    /** Train the indexed entry with the resolved direction. */
    void update(Addr pc, std::uint64_t history_at_predict, bool taken);

    /** Restore history after a squash (history as of the branch). */
    void repairHistory(std::uint64_t history_at_predict, bool taken);

    /** @return the current global history register value. */
    std::uint64_t history() const { return ghr; }

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;

    std::vector<std::uint8_t> table;
    std::size_t mask;
    std::uint64_t ghr = 0;
    std::uint64_t histMask;
};

/**
 * Hybrid predictor: a meta table of 2-bit chooser counters selects
 * between the bimodal and gshare components per branch.
 */
class HybridPredictor
{
  public:
    /** What the predictor decided, kept for the resolution update. */
    struct Lookup
    {
        bool prediction = false;
        bool bimodalSaid = false;
        bool gshareSaid = false;
        std::uint64_t historyAtPredict = 0;
    };

    HybridPredictor(std::size_t meta_entries = 8192,
                    std::size_t gshare_entries = 8192,
                    std::size_t bimodal_entries = 2048);

    /** Predict the branch at @p pc; shifts gshare history. */
    Lookup predict(Addr pc);

    /** Resolve: train all components and the chooser. */
    void update(Addr pc, const Lookup &lookup, bool taken);

    /** Repair gshare history after the frontend squashes. */
    void repairHistory(const Lookup &lookup, bool taken);

  private:
    std::size_t metaIndex(Addr pc) const { return (pc >> 2) & metaMask; }

    BimodalPredictor bimodal;
    GsharePredictor gshare;
    std::vector<std::uint8_t> meta;
    std::size_t metaMask;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param entries total entries; must be a multiple of @p ways
     * @param ways set associativity
     */
    explicit Btb(std::size_t entries = 2048, std::size_t ways = 4);

    /**
     * @param pc branch address
     * @param[out] target filled with the predicted target on a hit
     * @return true on a BTB hit
     */
    bool lookup(Addr pc, Addr &target);

    /** Install or refresh the mapping pc -> target. */
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        std::uint32_t lru = 0;
        bool valid = false;
    };

    std::size_t setIndex(Addr pc) const { return (pc >> 2) & setMask; }

    std::vector<Entry> sets;  ///< sets * ways entries, row-major
    std::size_t numSets;
    std::size_t numWays;
    std::size_t setMask;
    std::uint32_t lruClock = 0;
};

/** Return address stack (wrap-around, no overflow checks needed). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t entries = 64);

    void push(Addr return_pc);
    Addr pop();
    bool empty() const { return depth == 0; }
    std::size_t size() const { return depth; }

  private:
    std::vector<Addr> stack;
    std::size_t top = 0;
    std::size_t depth = 0;
};

} // namespace smthill

#endif // SMTHILL_BRANCH_PREDICTORS_HH
